//! Table 4: the bridge's learn contract — instructions as a function of
//! expired entries `e`, collisions `c`, traversals `t` (probe PCVs), and
//! occupancy `o`, with the rehashing row's performance cliff. This
//! reproduction scopes the expiry probe PCVs as `te`/`ce` (see
//! EXPERIMENTS.md) and prints the full method family.

use bolt_bench::table_fmt::print_table;
use bolt_nfs::bridge;
use bolt_trace::Metric;
use nf_lib::mac_table::{M_MT_EXPIRE, M_MT_LEARN, M_MT_LOOKUP};
use nf_lib::registry::DsRegistry;

fn main() {
    let mut reg = DsRegistry::new();
    let cfg = bridge::BridgeConfig::default();
    let ids = bridge::register(&mut reg, &cfg);
    for (title, method) in [
        (
            "Table 4 — bridge `learn` contract (paper rows: known / unknown / unknown+rehash)",
            M_MT_LEARN,
        ),
        ("bridge `lookup` contract", M_MT_LOOKUP),
        ("bridge `expire` contract", M_MT_EXPIRE),
    ] {
        let rows: Vec<Vec<String>> = reg
            .render_method(ids.table.ds, method, Metric::Instructions)
            .into_iter()
            .zip(reg.render_method(ids.table.ds, method, Metric::MemAccesses))
            .map(|((name, ic), (_, ma))| vec![name, ic, ma])
            .collect();
        print_table(
            title,
            &["Traffic type", "Instructions", "Memory accesses"],
            &rows,
        );
    }
    // The paper's cliff: the rehash row's constant dwarfs the others.
    let rows = reg.render_method(ids.table.ds, M_MT_LEARN, Metric::Instructions);
    println!(
        "\nrehash cliff: the '{}' row's constant term is the defence's performance cliff (§5.2).",
        rows[2].0
    );
}
