//! §5.1's hardware-model validation experiment: three programs that
//! traverse (P1) a non-contiguously allocated linked list, (P2) a linked
//! list laid out contiguously, and (P3) an array. The paper's conservative
//! model predicted P1 within 5%, over-estimated P2 by ~6× (prefetching
//! helps the real machine) and P3 by ~9× (prefetching + MLP). The more
//! the hardware behaves like the model, the more accurate BOLT is.

use bolt_bench::table_fmt::{human, print_table, ratio};
use bolt_hw::{ConservativeModel, TestbedModel};
use bolt_trace::{InstrClass, Tracer};

const N: u64 = 4096;
const BASE: u64 = 0x10_0000;

/// P1: pointer chase over nodes scattered one-per-page (dependent loads,
/// no usable spatial pattern).
fn p1(t: &mut dyn Tracer) {
    for i in 0..N {
        // Pseudo-random page order (LCG permutation over N pages).
        let idx = (i.wrapping_mul(1664525).wrapping_add(1013904223)) % N;
        t.mem_read_dep(BASE + idx * 4096, 8);
        t.instr(InstrClass::Alu, 2);
        t.instr(InstrClass::Branch, 1);
    }
}

/// P2: pointer chase over nodes allocated back-to-back (16-byte nodes).
fn p2(t: &mut dyn Tracer) {
    for i in 0..N {
        t.mem_read_dep(BASE + i * 16, 8);
        t.instr(InstrClass::Alu, 2);
        t.instr(InstrClass::Branch, 1);
    }
}

/// P3: array sum (independent 8-byte loads).
fn p3(t: &mut dyn Tracer) {
    for i in 0..N {
        t.mem_read(BASE + i * 8, 8);
        t.instr(InstrClass::Alu, 2);
        t.instr(InstrClass::Branch, 1);
    }
}

fn run(f: fn(&mut dyn Tracer)) -> (u64, u64) {
    let mut cons = ConservativeModel::new();
    f(&mut cons);
    let mut test = TestbedModel::new();
    f(&mut test);
    (cons.cycles(), test.cycles())
}

fn main() {
    type Prog = fn(&mut dyn Tracer);
    let progs: [(&str, Prog, &str); 3] = [
        ("P1", p1, "non-contiguous linked list (paper: within 5%)"),
        ("P2", p2, "contiguous linked list (paper: ~6x)"),
        ("P3", p3, "array (paper: ~9x)"),
    ];
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for (name, f, note) in progs {
        let (pred, meas) = run(f);
        ratios.push(pred as f64 / meas as f64);
        rows.push(vec![
            name.to_string(),
            human(pred),
            human(meas),
            ratio(pred, meas),
            note.to_string(),
        ]);
    }
    print_table(
        "P1/P2/P3 — conservative prediction vs simulated-testbed measurement",
        &[
            "program",
            "predicted cycles",
            "measured cycles",
            "ratio",
            "paper",
        ],
        &rows,
    );
    assert!(
        ratios[0] < 1.6,
        "P1 must be predicted closely, got {:.2}",
        ratios[0]
    );
    assert!(
        ratios[1] > 2.0 && ratios[1] > ratios[0] * 1.5,
        "P2 must show the prefetching gap, got {:.2}",
        ratios[1]
    );
    assert!(
        ratios[2] > ratios[1],
        "P3 (prefetch + MLP) must exceed P2: {:.2} vs {:.2}",
        ratios[2],
        ratios[1]
    );
    println!("\nThe more the hardware behaves like the model, the more accurate the bound (§5.1).");
}
