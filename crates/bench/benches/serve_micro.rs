//! Serving micro-benchmark: what does keeping the store open and the
//! contracts hot actually buy?
//!
//! Three measurements against a pre-warmed temp store:
//!
//! * **cold start** — a fresh `ServeCore` (the one-shot CLI shape:
//!   open, decode the record, rehydrate the pool, generate, solve) per
//!   query;
//! * **warm repeat** — the same query against a long-lived core: a memo
//!   hit, zero decodes, zero solver requests (asserted via counters);
//! * **socket round trip** — several concurrent clients hammering the
//!   framed protocol over a real socket, every reply checked
//!   byte-identical to the in-process answer, ending in a graceful
//!   shutdown.
//!
//! Results also land in `BENCH_serve.json` (the machine-readable
//! trajectory point; wall-clock numbers are machine-dependent, the
//! counter assertions are not). Quick mode (`BOLT_BENCH_QUICK=1`, the
//! CI smoke job) shrinks iteration counts.

use std::io::Write as _;
use std::time::Instant;

use bolt_bench::table_fmt::print_table;
use bolt_core::store::{level_tag, StoreExt};
use bolt_nfs::{Bridge, Firewall};
use bolt_serve::{
    Client, Endpoint, QueryRequest, Request, Response, ServeCore, Server, StatsReply,
};
use bolt_store::ContractStore;
use bolt_trace::Metric;
use dpdk_sim::StackLevel;

fn counter(stats: &StatsReply, name: &str) -> u64 {
    stats.get(name).unwrap_or(0)
}

/// Warm-query throughput on ONE connection at a pipeline depth: submit
/// a window of `depth` queries, flush them as one write, drain the
/// replies, repeat. Depth 1 degenerates to the strict v1
/// request/response round trip — the PR 6 baseline.
fn pipelined_ops(endpoint: &Endpoint, depth: u32, iters: usize, expected: &str) -> f64 {
    let mut session = Client::builder(endpoint)
        .pipeline_depth(depth)
        .session()
        .unwrap();
    let req = Request::Query(query("bridge"));
    // One untimed round trip so the server-side memo is warm.
    session.call(&req).unwrap();
    let mut tickets = Vec::with_capacity(depth as usize);
    let t0 = Instant::now();
    let mut done = 0usize;
    while done < iters {
        let burst = (depth as usize).min(iters - done);
        for _ in 0..burst {
            tickets.push(session.submit(&req).unwrap());
        }
        session.flush().unwrap();
        for t in tickets.drain(..) {
            match session.recv(t).unwrap() {
                Response::Query(r) => assert_eq!(r.text, expected, "pipelined answer diverged"),
                other => panic!("unexpected reply {other:?}"),
            }
            done += 1;
        }
    }
    iters as f64 / t0.elapsed().as_secs_f64()
}

fn query(nf: &str) -> QueryRequest {
    QueryRequest {
        nf: nf.to_string(),
        level: level_tag(StackLevel::NfOnly),
        metric: Metric::Instructions.index() as u8,
        tag: None,
        pcvs: vec![],
    }
}

fn main() {
    let quick = std::env::var("BOLT_BENCH_QUICK").is_ok();
    let cold_iters = if quick { 3 } else { 25 };
    let warm_iters = if quick { 200 } else { 20_000 };
    let socket_clients = 4usize;
    let socket_iters = if quick { 50 } else { 2_000 };

    // Self-contained temp store, pre-warmed so every timed query is a
    // store hit, never a fresh exploration.
    let dir = std::env::temp_dir().join(format!("bolt-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_dir = dir.join("store");
    {
        let store = ContractStore::open(&store_dir).unwrap();
        let _ = store.get_or_explore(&Bridge::default(), StackLevel::NfOnly);
        let _ = store.get_or_explore(&Firewall::default(), StackLevel::NfOnly);
    }

    // Cold start: fresh core per iteration — the one-shot process cost
    // (minus exec/linking) a long-lived server amortises away.
    let t0 = Instant::now();
    for _ in 0..cold_iters {
        let core = ServeCore::new(ContractStore::open(&store_dir).unwrap());
        let reply = core.query(&query("bridge")).unwrap();
        assert!(reply.found);
    }
    let cold_ms = t0.elapsed().as_secs_f64() / cold_iters as f64 * 1e3;

    // Warm repeat: one long-lived core, same question.
    let core = ServeCore::new(ContractStore::open(&store_dir).unwrap());
    let first = core.query(&query("bridge")).unwrap();
    let t0 = Instant::now();
    for _ in 0..warm_iters {
        let reply = core.query(&query("bridge")).unwrap();
        assert_eq!(reply, first);
    }
    let warm_us = t0.elapsed().as_secs_f64() / warm_iters as f64 * 1e6;
    let warm_ops = 1.0 / (warm_us / 1e6);
    let stats = core.stats_reply();
    assert_eq!(counter(&stats, "explorations"), 0, "store was pre-warmed");
    assert_eq!(
        counter(&stats, "contract_decodes"),
        1,
        "one decode total, then pure cache hits"
    );
    assert_eq!(
        counter(&stats, "solver_queries"),
        1,
        "the warm loop must never touch the solver"
    );
    assert_eq!(counter(&stats, "memo_hits"), warm_iters as u64);
    let memo_hit_rate =
        counter(&stats, "memo_hits") as f64 / counter(&stats, "queries").max(1) as f64;

    // Socket round trips: concurrent clients over a real socket, every
    // answer checked against the in-process one, graceful shutdown.
    let expected = first.text.clone();
    let builder = Server::builder().tcp("127.0.0.1:0");
    #[cfg(unix)]
    let builder = builder.unix(dir.join("bench.sock"));
    let server = builder
        .start(ServeCore::new(ContractStore::open(&store_dir).unwrap()))
        .unwrap();
    #[cfg(unix)]
    let endpoint = Endpoint::Unix(server.unix_path().unwrap().to_path_buf());
    #[cfg(not(unix))]
    let endpoint = Endpoint::Tcp(server.tcp_addr().unwrap().to_string());
    let t0 = Instant::now();
    let handles: Vec<_> = (0..socket_clients)
        .map(|_| {
            let ep = endpoint.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::builder(&ep).build().unwrap();
                for _ in 0..socket_iters {
                    let reply = client.query(query("bridge")).unwrap();
                    assert_eq!(reply.text, expected, "socket answer diverged");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let socket_ops = (socket_clients * socket_iters) as f64 / t0.elapsed().as_secs_f64();

    // Pipelined warm-query throughput on a single connection: the
    // event-driven engine's headline number. Depth 1 is the strict
    // round-trip baseline; deeper windows amortise syscalls and wakeups
    // across the whole in-flight window.
    let pipe_iters = if quick { 400 } else { 20_000 };
    let pipe_depths = [1u32, 4, 8];
    let pipe_ops: Vec<(u32, f64)> = pipe_depths
        .iter()
        .map(|&d| (d, pipelined_ops(&endpoint, d, pipe_iters, &expected)))
        .collect();
    let depth_ops = |d: u32| pipe_ops.iter().find(|(pd, _)| *pd == d).unwrap().1;
    let pipe_speedup = depth_ops(8) / depth_ops(1);
    if !quick {
        assert!(
            pipe_speedup >= 2.0,
            "pipelining at depth 8 must be ≥2× depth 1 on one connection \
             (got {pipe_speedup:.2}×)"
        );
    }

    server.request_shutdown();
    let served = server.join();

    // Per-opcode latency percentiles, from the server's own histograms
    // (nanosecond series; reported in µs). Only opcodes the bench
    // actually exercised appear.
    let snap = served.metrics().snapshot();
    let opcode_lat: Vec<(String, u64, f64, f64)> = snap
        .histograms
        .iter()
        .filter_map(|(name, h)| {
            let op = name.strip_prefix("serve.req.")?;
            (h.count > 0).then(|| {
                (
                    op.to_string(),
                    h.count,
                    h.p50() as f64 / 1e3,
                    h.p99() as f64 / 1e3,
                )
            })
        })
        .collect();

    print_table(
        "serve_micro — long-lived serving vs one-shot cost",
        &["measurement", "value"],
        &[
            vec![
                "cold start (open+decode+solve), ms".into(),
                format!("{cold_ms:.2}"),
            ],
            vec!["warm repeat (memo hit), µs".into(), format!("{warm_us:.2}")],
            vec!["warm repeat, ops/sec".into(), format!("{warm_ops:.0}")],
            vec![
                format!("socket ops/sec ({socket_clients} clients)"),
                format!("{socket_ops:.0}"),
            ],
            vec![
                "pipelined ops/sec, 1 conn @ depth 1/4/8".into(),
                format!(
                    "{:.0} / {:.0} / {:.0}",
                    depth_ops(1),
                    depth_ops(4),
                    depth_ops(8)
                ),
            ],
            vec![
                "pipeline speedup (depth 8 vs 1)".into(),
                format!("{pipe_speedup:.2}x"),
            ],
            vec!["memo hit rate".into(), format!("{memo_hit_rate:.4}")],
            vec![
                "warm explorations / solver / decodes".into(),
                "0 / 1 / 1".into(),
            ],
        ],
    );
    for (op, count, p50_us, p99_us) in &opcode_lat {
        println!("socket {op}: n={count} p50={p50_us:.1}µs p99={p99_us:.1}µs");
    }
    println!(
        "\nwarm-serving check passed: {warm_iters} repeated queries ran 0 explorations,\n\
         0 further solver requests, 0 further record decodes; all socket answers were\n\
         byte-identical to the in-process rendering"
    );

    // The machine-readable trajectory point.
    let lat_json = opcode_lat
        .iter()
        .map(|(op, count, p50_us, p99_us)| {
            format!(
                "\"{op}\": {{\"count\": {count}, \"p50_us\": {p50_us:.1}, \
                 \"p99_us\": {p99_us:.1}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let pipe_json = pipe_ops
        .iter()
        .map(|(d, ops)| format!("\"depth_{d}\": {ops:.0}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"serve_micro\",\n  \"quick\": {quick},\n  \
         \"cold_start_ms\": {cold_ms:.3},\n  \"warm_memo_us\": {warm_us:.3},\n  \
         \"warm_ops_per_sec\": {warm_ops:.0},\n  \"socket_clients\": {socket_clients},\n  \
         \"socket_ops_per_sec\": {socket_ops:.0},\n  \
         \"pipelined_ops_per_sec\": {{{pipe_json}}},\n  \
         \"pipeline_speedup_depth8_vs_depth1\": {pipe_speedup:.2},\n  \
         \"memo_hit_rate\": {memo_hit_rate:.4},\n  \
         \"opcode_latency\": {{{lat_json}}}\n}}\n"
    );
    // Land the trajectory file at the workspace root (cargo runs benches
    // with the package dir as cwd) so successive runs overwrite one spot.
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .join("BENCH_serve.json");
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            f.write_all(json.as_bytes()).unwrap();
            println!("wrote {}", path.display());
        }
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
