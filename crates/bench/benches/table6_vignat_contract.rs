//! Table 6: the VigNAT performance contract — instructions per traffic
//! type as a function of expired flows `e`, collisions `c`, and
//! traversals `t`. The expired-flow term dominates by an order of
//! magnitude, which is the §5.3 debugging story: long tail latencies were
//! batched flow expiry.

use bolt_bench::table_fmt::print_table;
use bolt_core::nf::Bolt;
use bolt_core::{ClassSpec, InputClass};
use bolt_expr::{Monomial, PcvAssignment};
use bolt_nfs::nat::Nat;
use bolt_trace::Metric;
use dpdk_sim::StackLevel;

fn main() {
    let mut contract = Bolt::nf(Nat::default())
        .explore(StackLevel::FullStack)
        .contract();
    let ids = contract.ids;
    let classes = [
        InputClass::new("Invalid packets (dropped)", ClassSpec::Tag("invalid")),
        InputClass::new("Known flows (forwarded)", ClassSpec::Tag("int:known")),
        InputClass::new("New external flows (dropped)", ClassSpec::Tag("ext:new")),
        InputClass::new(
            "New internal flows; table full (dropped)",
            ClassSpec::Tag("int:full"),
        ),
        InputClass::new(
            "New internal flows; ports exhausted (dropped)",
            ClassSpec::Tag("int:exhausted"),
        ),
        InputClass::new(
            "New internal flows; table not full (forwarded)",
            ClassSpec::Tag("int:new"),
        ),
    ];
    let env = PcvAssignment::new();
    let rows: Vec<Vec<String>> = classes
        .iter()
        .map(|c| {
            let q = contract.query(c, Metric::Instructions, &env).unwrap();
            let rendered = contract.display_expr(&q.expr);
            vec![c.name.clone(), rendered]
        })
        .collect();
    print_table(
        "Table 6 — VigNAT contract (paper shape: a·e + b·c + d·t + f·e·c + g·e·t + const)",
        &["Traffic type", "Instructions"],
        &rows,
    );
    // §5.3's observation: the expired-flows term dominates.
    let known = contract
        .query(&classes[1], Metric::Instructions, &env)
        .unwrap()
        .expr;
    let e_coeff = known.coeff(&Monomial::var(ids.ft.e));
    let c_coeff = known.coeff(&Monomial::var(ids.ft.c));
    println!(
        "\nPCV 'e' coefficient ({e_coeff}) dominates 'c' ({c_coeff}) — the §5.3 tail-latency smoking gun."
    );
    assert!(e_coeff > 3 * c_coeff);
}
