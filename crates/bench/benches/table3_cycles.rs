//! Table 3: accuracy of execution-cycle contracts. BOLT's conservative
//! hardware model over-estimates cycles by small-integer factors for
//! typical classes (paper: 1.46×–4.08×) and more for the pathological
//! mass-expiry scenarios (paper: ≈9×), because the testbed's prefetching
//! and memory-level parallelism are deliberately unmodelled (§3.5).

use bolt_bench::scenarios::all_scenarios;
use bolt_bench::table_fmt::{human, print_table, ratio};

fn main() {
    let path_cap = std::env::var("BOLT_PATH_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8192);
    let scenarios = all_scenarios(path_cap);
    let mut rows = Vec::new();
    for s in &scenarios {
        rows.push(vec![
            s.name.to_string(),
            human(s.predicted[2]),
            human(s.measured[2]),
            ratio(s.predicted[2], s.measured[2]),
            s.description.to_string(),
        ]);
    }
    print_table(
        "Table 3 — execution-cycle contracts (paper ratios: 1.46-4.08x typical, ~9x pathological)",
        &[
            "NF+class",
            "predicted bound",
            "measured cycles",
            "ratio",
            "packet class",
        ],
        &rows,
    );
    for s in &scenarios {
        let r = s.predicted[2] as f64 / s.measured[2].max(1) as f64;
        assert!(r >= 1.0, "{}: cycle bound violated", s.name);
        assert!(
            r < 40.0,
            "{}: conservative ratio {r:.1} far outside the paper's band",
            s.name
        );
    }
}
