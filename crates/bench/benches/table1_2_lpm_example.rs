//! Tables 1 and 2: the §2 running example — contracts for the simple
//! trie-based LPM router and for its `lpmGet` method, expressed over the
//! matched-prefix-length PCV `l`. The paper's stylised numbers are
//! `4·l+5 / l+3` (router) and `4·l+2 / l+1` (lpmGet); this prints the
//! reproduction's exact coefficients. The example assumes the framework
//! below the NF costs nothing, so the analysis runs without the DPDK
//! substrate.

use bolt_bench::table_fmt::print_table;
use bolt_core::{generate, ClassSpec, InputClass};
use bolt_expr::PcvAssignment;
use bolt_nfs::example_router;
use bolt_see::Explorer;
use bolt_solver::Solver;
use bolt_trace::Metric;
use dpdk_sim::headers as h;
use nf_lib::lpm_trie::LpmTrieModel;
use nf_lib::registry::DsRegistry;

fn main() {
    let mut reg = DsRegistry::new();
    let ids = example_router::register(&mut reg);
    // Bare exploration: no driver, no mempool — §2 assumes layers below
    // the NF are free.
    let exploration = Explorer::new().explore(|ctx| {
        let mut trie = LpmTrieModel::new(ids.trie);
        let region = ctx.packet(64);
        let mbuf = dpdk_sim::Mbuf {
            region,
            len: 64,
            port: 0,
        };
        example_router::process(ctx, &mut trie, mbuf);
    });
    let mut contract = generate(&reg, exploration);
    let solver = Solver::default();
    let classes = [
        InputClass::new(
            "Invalid packets",
            ClassSpec::field_ne(h::ETHER_TYPE, 2, h::ETHERTYPE_IPV4 as u64),
        ),
        InputClass::new(
            "Valid packets",
            ClassSpec::field_eq(h::ETHER_TYPE, 2, h::ETHERTYPE_IPV4 as u64),
        ),
    ];
    let env = PcvAssignment::new();
    let mut rows = Vec::new();
    for class in &classes {
        let ic = contract
            .query(&solver, class, Metric::Instructions, &env)
            .unwrap();
        let ma = contract
            .query(&solver, class, Metric::MemAccesses, &env)
            .unwrap();
        rows.push(vec![
            class.name.clone(),
            format!("{}", ic.expr.display(&reg.pcvs)),
            format!("{}", ma.expr.display(&reg.pcvs)),
        ]);
    }
    print_table(
        "Table 1 — contracts for the example LPM router (paper, stylised: 2 / 1 and 4*l+5 / l+3)",
        &["Input class", "Instructions", "Memory accesses"],
        &rows,
    );

    let rows: Vec<Vec<String>> = Metric::ALL
        .iter()
        .map(|&m| {
            let r = reg.render_method(ids.trie.ds, nf_lib::lpm_trie::M_LOOKUP, m);
            vec![format!("{m}"), r[0].1.clone()]
        })
        .collect();
    print_table(
        "Table 2 — contract for lpmGet (paper, stylised: 4*l+2 instructions, l+1 accesses)",
        &["metric", "unconstrained"],
        &rows,
    );
}
