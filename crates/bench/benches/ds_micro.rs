//! Wall-clock Criterion micro-benchmarks of the stateful library itself
//! (not part of the paper's evaluation — this measures the *reproduction's*
//! own data-structure performance, useful when hacking on `nf-lib`).

use bolt_expr::Width;
use bolt_see::{ConcreteCtx, NfCtx};
use bolt_trace::{AddressSpace, NullTracer};
use criterion::{criterion_group, criterion_main, Criterion};
use nf_lib::flow_table::{self, FlowTable, FlowTableOps, FlowTableParams};
use nf_lib::lpm_dir24_8::{self, Dir24_8, Dir24_8Ops};
use nf_lib::maglev::{self, MaglevRing, MaglevRingOps};
use nf_lib::port_alloc::{self, AllocatorA, AllocatorB, PortAllocOps};
use nf_lib::registry::DsRegistry;
use std::hint::black_box;

fn bench_flow_table(c: &mut Criterion) {
    let mut reg = DsRegistry::new();
    let params = FlowTableParams {
        capacity: 4096,
        ttl_ns: u64::MAX / 2,
    };
    let ids = flow_table::register::<3>(&mut reg, "ft", "", params);
    let mut aspace = AddressSpace::new();
    let mut table = FlowTable::<3>::new(ids, params, &mut aspace);
    let mut t = NullTracer;
    let mut ctx = ConcreteCtx::new(&mut t);
    let now = ctx.lit(0, Width::W64);
    for i in 0..2048u64 {
        let k = [
            ctx.lit(i, Width::W64),
            ctx.lit(1, Width::W64),
            ctx.lit(2, Width::W64),
        ];
        let v = ctx.lit(i, Width::W64);
        assert!(FlowTableOps::<_, 3>::put(&mut table, &mut ctx, &k, v, now));
    }
    let mut i = 0u64;
    c.bench_function("flow_table_get_hit", |b| {
        b.iter(|| {
            let k = [
                ctx.lit(i % 2048, Width::W64),
                ctx.lit(1, Width::W64),
                ctx.lit(2, Width::W64),
            ];
            i += 1;
            black_box(FlowTableOps::<_, 3>::get(&mut table, &mut ctx, &k, now))
        })
    });
}

fn bench_lpm(c: &mut Criterion) {
    let mut reg = DsRegistry::new();
    let ids = lpm_dir24_8::register(&mut reg, "lpm");
    let mut aspace = AddressSpace::new();
    let mut table = Dir24_8::new(ids, 16, 64, 0, &mut aspace);
    table.insert(0x0A000000, 8, 1);
    table.insert(0x0B0C0000, 24, 2);
    let mut t = NullTracer;
    let mut ctx = ConcreteCtx::new(&mut t);
    let mut x = 0u64;
    c.bench_function("dir24_8_lookup", |b| {
        b.iter(|| {
            x = x.wrapping_add(0x01000193);
            let ip = ctx.lit(x & 0xFFFF_FFFF, Width::W32);
            black_box(Dir24_8Ops::<_>::lookup(&mut table, &mut ctx, ip))
        })
    });
}

fn bench_maglev(c: &mut Criterion) {
    let mut reg = DsRegistry::new();
    let ids = maglev::register_ring(&mut reg, "ring", 16, 65537);
    let mut aspace = AddressSpace::new();
    let mut ring = MaglevRing::new(ids, 16, 65537, &mut aspace);
    let mut t = NullTracer;
    let mut ctx = ConcreteCtx::new(&mut t);
    let mut x = 0u64;
    c.bench_function("maglev_lookup", |b| {
        b.iter(|| {
            x = x.wrapping_add(0x9E3779B9);
            let h = ctx.lit(x, Width::W64);
            black_box(MaglevRingOps::<_>::lookup(&mut ring, &mut ctx, h))
        })
    });
}

fn bench_allocators(c: &mut Criterion) {
    let mut reg = DsRegistry::new();
    let ia = port_alloc::register_a(&mut reg, "a", 4096, 1024);
    let ib = port_alloc::register_b(&mut reg, "b", 4096, 1024);
    let mut aspace = AddressSpace::new();
    let mut a = AllocatorA::new(ia, 4096, 1024, &mut aspace);
    let mut b_ = AllocatorB::new(ib, 4096, 1024, &mut aspace);
    let mut t = NullTracer;
    let mut ctx = ConcreteCtx::new(&mut t);
    c.bench_function("allocator_a_roundtrip", |bch| {
        bch.iter(|| {
            let p = PortAllocOps::<_>::alloc(&mut a, &mut ctx).unwrap();
            PortAllocOps::<_>::free(&mut a, &mut ctx, p);
            black_box(p)
        })
    });
    c.bench_function("allocator_b_roundtrip", |bch| {
        bch.iter(|| {
            let p = PortAllocOps::<_>::alloc(&mut b_, &mut ctx).unwrap();
            PortAllocOps::<_>::free(&mut b_, &mut ctx, p);
            black_box(p)
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(500))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_flow_table, bench_lpm, bench_maglev, bench_allocators
}
criterion_main!(benches);
