//! Figure 1: accuracy of performance contracts — predicted vs measured
//! instruction count (IC) and memory-access count (MA) for every §5.1
//! scenario. The paper's headline: maximum over-estimation 7.5% (IC) and
//! 7.6% (MA), with the pathological scenarios within 2.36% / 3.03%.
//!
//! `NAT1adv` is this reproduction's extra row: the same mass-expiry state
//! arranged as one adversarial probe run, where the product-form `e·te`
//! coalescing makes the bound ≈2× conservative (see EXPERIMENTS.md).

use bolt_bench::scenarios::{all_scenarios, nat_pathological};
use bolt_bench::table_fmt::{human, overestimate_pct, print_table};

fn main() {
    let path_cap = std::env::var("BOLT_PATH_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8192);
    let mut scenarios = all_scenarios(path_cap);
    scenarios.push(nat_pathological(2048, false));
    let mut rows = Vec::new();
    let mut max_ic_gap: f64 = 0.0;
    let mut max_ma_gap: f64 = 0.0;
    for s in &scenarios {
        if s.name != "NAT1adv" {
            max_ic_gap = max_ic_gap.max(s.gap(0));
            max_ma_gap = max_ma_gap.max(s.gap(1));
        }
        rows.push(vec![
            s.name.to_string(),
            human(s.predicted[0]),
            human(s.measured[0]),
            overestimate_pct(s.predicted[0], s.measured[0]),
            human(s.predicted[1]),
            human(s.measured[1]),
            overestimate_pct(s.predicted[1], s.measured[1]),
            s.description.to_string(),
        ]);
    }
    print_table(
        "Figure 1 — contract accuracy, IC and MA (paper: max +7.5% / +7.6%)",
        &[
            "scenario",
            "pred IC",
            "meas IC",
            "IC over",
            "pred MA",
            "meas MA",
            "MA over",
            "packet class",
        ],
        &rows,
    );
    println!(
        "\nmax over-estimation across scenarios (excl. NAT1adv): IC {:.2}%, MA {:.2}%",
        max_ic_gap * 100.0,
        max_ma_gap * 100.0
    );
    println!(
        "pathological table capacity: {path_cap} (set BOLT_PATH_CAP to change; the paper used 65536)"
    );
    assert!(
        max_ic_gap < 0.12 && max_ma_gap < 0.12,
        "reproduction regression: gaps exceed the expected band"
    );
}
