//! Exploration micro-benchmark: how fast does path enumeration run, and
//! how many solver queries does it actually issue?
//!
//! The pre-incremental explorer issued one from-scratch solver query per
//! feasibility request (`checks_requested` — the counter baseline). The
//! incremental engine answers most requests from saved propagation state,
//! the feasibility memo, and cached models; `solver_queries` counts the
//! full decision-procedure runs that remain. The reduction factor is
//! machine-independent and asserted in `tests/explore_stats.rs`; this
//! harness additionally reports wall-clock and paths/sec.
//!
//! Quick mode (`BOLT_BENCH_QUICK=1`, used by the CI smoke job) runs one
//! timing iteration per scenario instead of many.
//!
//! With `BOLT_STORE_DIR` set, each exploration goes through the
//! persistent contract store (the `Bolt` fluent path): the first process
//! populates it, later processes decode stored paths instead of
//! exploring — the `source` column reports which happened. The CI
//! warm-cache smoke step runs the harness twice against a temp store
//! with `BOLT_BENCH_EXPECT_ALL_CACHED=1` on the second run, which makes
//! the harness fail unless every scenario was served from the store with
//! zero explorations.
//!
//! With `BOLT_THREADS=n` (n > 1), every scenario additionally runs both
//! sequentially and on `n` exploration workers; the harness *asserts*
//! that the full solver-counter block is identical (parallel
//! exploration replays the sequential cache schedule — the counts are
//! machine-independent, like `tests/explore_stats.rs`) and prints a
//! seq-vs-parallel wall-clock table for the trajectory log. The
//! speedup column is the only machine-dependent number in the output.

use std::time::Instant;

use bolt_bench::table_fmt::print_table;
use bolt_core::nf::{ambient_threads, Bolt, NetworkFunction};
use bolt_nfs::nat::{AllocKind, Nat, NatConfig};
use bolt_nfs::{Bridge, LpmRouter};
use bolt_see::ExploreStats;
use dpdk_sim::StackLevel;

struct Scenario {
    name: &'static str,
    /// Runs one exploration on the given worker-thread count
    /// (store-aware when `BOLT_STORE_DIR` is set); returns the stats
    /// plus whether the result came from the store.
    run: Box<dyn Fn(usize) -> (ExploreStats, bool)>,
}

fn scenario<N: NetworkFunction + Clone + Sync + 'static>(
    name: &'static str,
    nf: N,
    level: StackLevel,
) -> Scenario {
    Scenario {
        name,
        run: Box::new(
            move |threads /* fresh exploration (or store hit) per call */| {
                let e = Bolt::nf(nf.clone()).threads(threads).explore(level);
                (e.result.stats, e.cached)
            },
        ),
    }
}

fn main() {
    let quick = std::env::var("BOLT_BENCH_QUICK").is_ok();
    let expect_cached = std::env::var("BOLT_BENCH_EXPECT_ALL_CACHED").is_ok();
    let threads = ambient_threads();
    let iters = if quick { 1 } else { 25 };
    let mut explorations = 0u64;

    // Increasing exploration levels: NF-only stateless bodies first, then
    // the full simulated stack (driver + kernel wrappers add branches).
    let scenarios = vec![
        scenario("bridge/nf-only", Bridge::default(), StackLevel::NfOnly),
        scenario(
            "bridge/full-stack",
            Bridge::default(),
            StackLevel::FullStack,
        ),
        scenario(
            "nat-a/nf-only",
            Nat::with(NatConfig::default(), AllocKind::A),
            StackLevel::NfOnly,
        ),
        scenario(
            "nat-a/full-stack",
            Nat::with(NatConfig::default(), AllocKind::A),
            StackLevel::FullStack,
        ),
        scenario(
            "nat-b/full-stack",
            Nat::with(NatConfig::default(), AllocKind::B),
            StackLevel::FullStack,
        ),
        scenario("lpm/nf-only", LpmRouter::default(), StackLevel::NfOnly),
        scenario(
            "lpm/full-stack",
            LpmRouter::default(),
            StackLevel::FullStack,
        ),
    ];

    let mut rows = Vec::new();
    let mut par_rows = Vec::new();
    for s in &scenarios {
        // Warm-up + stats collection (stats are identical every run).
        let (stats, cached) = (s.run)(threads);
        if expect_cached && !cached {
            panic!(
                "{}: BOLT_BENCH_EXPECT_ALL_CACHED is set but the scenario \
                 explored instead of hitting the store",
                s.name
            );
        }
        explorations += u64::from(!cached);
        let elapsed = if threads > 1 {
            // Machine-independent parity gate: the parallel committer
            // replays the sequential solver schedule, so every counter —
            // requests, full solves, memo/witness hits, interned terms —
            // must match the sequential run exactly.
            let (seq_stats, _) = (s.run)(1);
            assert_eq!(
                seq_stats, stats,
                "{}: exploration stats diverged between 1 and {threads} threads",
                s.name
            );
            let t0 = Instant::now();
            for _ in 0..iters {
                let _ = (s.run)(1);
            }
            let seq_ms = t0.elapsed().as_secs_f64() / iters as f64 * 1e3;
            let t0 = Instant::now();
            for _ in 0..iters {
                let _ = (s.run)(threads);
            }
            // The parallel timing doubles as the main table's
            // ms/explore — no third timing loop.
            let par = t0.elapsed().as_secs_f64() / iters as f64;
            let par_ms = par * 1e3;
            par_rows.push(vec![
                s.name.to_string(),
                format!("{seq_ms:.2}"),
                format!("{par_ms:.2}"),
                format!("{:.2}x", seq_ms / par_ms.max(1e-9)),
            ]);
            par
        } else {
            let t0 = Instant::now();
            for _ in 0..iters {
                let _ = (s.run)(threads);
            }
            t0.elapsed().as_secs_f64() / iters as f64
        };
        let paths_per_sec = stats.runs as f64 / elapsed.max(1e-9);
        let sv = stats.solver;
        let reduction = if sv.solver_queries == 0 {
            "∞".to_string()
        } else {
            format!(
                "{:.1}x",
                sv.checks_requested as f64 / sv.solver_queries as f64
            )
        };
        let store_active = std::env::var_os("BOLT_STORE_DIR").is_some();
        // With a store configured, the warm-up call populates it, so the
        // timed iterations of a cold scenario decode from disk: label it
        // "seeded" rather than pretending the timings are exploration
        // cost.
        let source = match (store_active, cached) {
            (false, _) => "explored",
            (true, true) => "warm",
            (true, false) => "seeded",
        };
        rows.push(vec![
            s.name.to_string(),
            source.to_string(),
            stats.runs.to_string(),
            format!("{:.2}", elapsed * 1e3),
            format!("{paths_per_sec:.0}"),
            sv.checks_requested.to_string(),
            sv.solver_queries.to_string(),
            reduction,
            sv.witness_reuse_hits.to_string(),
            sv.memo_hits.to_string(),
            sv.unsat_by_propagation.to_string(),
            stats.terms_interned.to_string(),
        ]);
    }
    print_table(
        "explore_micro — incremental exploration engine",
        &[
            "scenario",
            "source",
            "runs",
            "ms/explore",
            "runs/s",
            "requests",
            "queries",
            "reduction",
            "witness",
            "memo",
            "unsat-prop",
            "terms",
        ],
        &rows,
    );
    println!(
        "\n`requests` is the pre-incremental query count (one full solve per\n\
         feasibility request); `queries` is what the incremental engine still\n\
         runs. Exploration output is bit-identical either way."
    );
    if threads > 1 {
        print_table(
            &format!("explore_micro — seq vs {threads} exploration workers"),
            &["scenario", "ms/seq", "ms/par", "speedup"],
            &par_rows,
        );
        println!(
            "parallel determinism check passed: solver counters (requests, \
             queries, memo/witness hits) and interned-term counts are \
             identical at 1 and {threads} threads for all {} scenarios; \
             the speedup column is wall-clock only",
            scenarios.len()
        );
    }
    if std::env::var_os("BOLT_STORE_DIR").is_some() {
        println!(
            "store: {} of {} scenarios explored fresh during warm-up \
             (\"seeded\"); timed iterations always decode from \
             BOLT_STORE_DIR, so ms/explore on seeded rows is store-decode \
             latency",
            explorations,
            scenarios.len()
        );
    }
    if expect_cached {
        assert_eq!(explorations, 0, "warm run must perform zero explorations");
        println!("warm-cache check passed: 0 explorations, 0 solver queries issued");
    }
}
