//! Exploration micro-benchmark: how fast does path enumeration run, and
//! how many solver queries does it actually issue?
//!
//! The pre-incremental explorer issued one from-scratch solver query per
//! feasibility request (`checks_requested` — the counter baseline). The
//! incremental engine answers most requests from saved propagation state,
//! the feasibility memo, and cached models; `solver_queries` counts the
//! full decision-procedure runs that remain. The reduction factor is
//! machine-independent and asserted in `tests/explore_stats.rs`; this
//! harness additionally reports wall-clock and paths/sec.
//!
//! Quick mode (`BOLT_BENCH_QUICK=1`, used by the CI smoke job) runs one
//! timing iteration per scenario instead of many.

use std::time::Instant;

use bolt_bench::table_fmt::print_table;
use bolt_core::nf::NetworkFunction;
use bolt_nfs::nat::{AllocKind, Nat, NatConfig};
use bolt_nfs::{Bridge, LpmRouter};
use bolt_see::ExploreStats;
use dpdk_sim::StackLevel;

struct Scenario {
    name: &'static str,
    run: Box<dyn Fn() -> ExploreStats>,
}

fn scenario<N: NetworkFunction + Clone + 'static>(
    name: &'static str,
    nf: N,
    level: StackLevel,
) -> Scenario {
    Scenario {
        name,
        run: Box::new(move |/* fresh exploration per call */| {
            nf.clone().explore(level).result.stats
        }),
    }
}

fn main() {
    let quick = std::env::var("BOLT_BENCH_QUICK").is_ok();
    let iters = if quick { 1 } else { 25 };

    // Increasing exploration levels: NF-only stateless bodies first, then
    // the full simulated stack (driver + kernel wrappers add branches).
    let scenarios = vec![
        scenario("bridge/nf-only", Bridge::default(), StackLevel::NfOnly),
        scenario(
            "bridge/full-stack",
            Bridge::default(),
            StackLevel::FullStack,
        ),
        scenario(
            "nat-a/nf-only",
            Nat::with(NatConfig::default(), AllocKind::A),
            StackLevel::NfOnly,
        ),
        scenario(
            "nat-a/full-stack",
            Nat::with(NatConfig::default(), AllocKind::A),
            StackLevel::FullStack,
        ),
        scenario(
            "nat-b/full-stack",
            Nat::with(NatConfig::default(), AllocKind::B),
            StackLevel::FullStack,
        ),
        scenario("lpm/nf-only", LpmRouter::default(), StackLevel::NfOnly),
        scenario(
            "lpm/full-stack",
            LpmRouter::default(),
            StackLevel::FullStack,
        ),
    ];

    let mut rows = Vec::new();
    for s in &scenarios {
        // Warm-up + stats collection (stats are identical every run).
        let stats = (s.run)();
        let t0 = Instant::now();
        for _ in 0..iters {
            let _ = (s.run)();
        }
        let elapsed = t0.elapsed().as_secs_f64() / iters as f64;
        let paths_per_sec = stats.runs as f64 / elapsed.max(1e-9);
        let sv = stats.solver;
        let reduction = if sv.solver_queries == 0 {
            "∞".to_string()
        } else {
            format!(
                "{:.1}x",
                sv.checks_requested as f64 / sv.solver_queries as f64
            )
        };
        rows.push(vec![
            s.name.to_string(),
            stats.runs.to_string(),
            format!("{:.2}", elapsed * 1e3),
            format!("{paths_per_sec:.0}"),
            sv.checks_requested.to_string(),
            sv.solver_queries.to_string(),
            reduction,
            sv.witness_reuse_hits.to_string(),
            sv.memo_hits.to_string(),
            sv.unsat_by_propagation.to_string(),
            stats.terms_interned.to_string(),
        ]);
    }
    print_table(
        "explore_micro — incremental exploration engine",
        &[
            "scenario",
            "runs",
            "ms/explore",
            "runs/s",
            "requests",
            "queries",
            "reduction",
            "witness",
            "memo",
            "unsat-prop",
            "terms",
        ],
        &rows,
    );
    println!(
        "\n`requests` is the pre-incremental query count (one full solve per\n\
         feasibility request); `queries` is what the incremental engine still\n\
         runs. Exploration output is bit-identical either way."
    );
}
