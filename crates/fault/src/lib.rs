//! Seedable deterministic fault injection.
//!
//! The store and serve layers promise to *hold* under faults — torn
//! writes, dead sockets, stalled clients. Proving that needs faults on
//! demand, reproducibly. This crate is the injection substrate: a
//! [`FaultPlan`] names *sites* (string keys like `store.rename` or
//! `serve.write.partial`) and gives each one a deterministic schedule —
//! either a probability drawn from a per-site seeded xorshift stream, or
//! "fire exactly on the Nth call". Code under test asks
//! [`FaultPlan::fires`] at each site; everything else about the fault
//! (torn write vs. error vs. stall) is the injection point's business,
//! so the plan stays a pure decision oracle.
//!
//! Two ways to activate a plan:
//!
//! * **Explicitly** — build one with [`FaultPlan::seeded`] and the
//!   `with_*` builders and hand it to `ContractStore::with_faults` or
//!   `ServerConfig::fault` (what the torture tests do).
//! * **Ambiently** — set `BOLT_FAULT_SEED` (a u64) and/or
//!   `BOLT_FAULT_PLAN` (comma-separated `site=PROB` / `site@NTH`
//!   entries, e.g. `store.rename=0.25,serve.read.err@3`); [`ambient`]
//!   parses them once and every store/server opened afterwards picks the
//!   plan up. With neither variable set, [`ambient`] is `None` and the
//!   instrumented code paths cost one branch.
//!
//! Determinism: each site owns its own RNG stream, seeded from the plan
//! seed and the site name, plus a call counter. A single-threaded
//! sequence of `fires` calls is therefore a pure function of (seed,
//! plan, call order); concurrent callers still get a deterministic
//! *multiset* of decisions per site, just interleaved by the scheduler.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Well-known site names. The constants exist so injection points and
/// plans cannot drift apart on spelling; plans may also name ad-hoc
/// sites (unknown names simply never fire).
pub mod site {
    /// `ContractStore::put`: fail the record write outright (ENOSPC-ish;
    /// the temp file is cleaned up).
    pub const STORE_WRITE: &str = "store.write";
    /// `ContractStore::put`: crash mid-write — half the record bytes
    /// land in the temp file, which is deliberately *left behind* (the
    /// orphan `ContractStore::open` must quarantine).
    pub const STORE_WRITE_PARTIAL: &str = "store.write.partial";
    /// `ContractStore::put`: fail the pre-rename fsync.
    pub const STORE_FSYNC: &str = "store.fsync";
    /// `ContractStore::put`: crash between write and rename — the temp
    /// file is complete but never renamed (left behind, like a writer
    /// killed at the worst moment).
    pub const STORE_RENAME: &str = "store.rename";
    /// `ContractStore::get`: the read fails (counts as a miss).
    pub const STORE_READ: &str = "store.read";
    /// Server connection read: injected I/O error (connection reset).
    pub const SERVE_READ_ERR: &str = "serve.read.err";
    /// Server connection read: stall for [`crate::FaultPlan::stall`]
    /// first.
    pub const SERVE_READ_STALL: &str = "serve.read.stall";
    /// Server connection read: spurious EOF (mid-stream disconnect).
    pub const SERVE_READ_DISCONNECT: &str = "serve.read.disconnect";
    /// Server connection write: the frame is dropped with an error.
    pub const SERVE_WRITE_ERR: &str = "serve.write.err";
    /// Server connection write: half the bytes land, then an error — a
    /// torn frame on the client's wire.
    pub const SERVE_WRITE_PARTIAL: &str = "serve.write.partial";
    /// Server request handling: stall before servicing (drives the
    /// per-request deadline deterministically in tests).
    pub const SERVE_HANDLE_STALL: &str = "serve.handle.stall";
}

/// A small, fast, seedable PRNG (xorshift64*). Not cryptographic; used
/// for fault schedules and client retry jitter.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded generator (a zero seed is remapped — xorshift has no zero
    /// state).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a-64 over a site name (seeds the per-site RNG stream; local copy
/// so this crate stays dependency-free).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One site's schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Mode {
    /// Fire each call with this probability (drawn from the site's RNG).
    Prob(f64),
    /// Fire exactly on the Nth call (1-based), once.
    At(u64),
}

#[derive(Debug)]
struct SiteState {
    mode: Mode,
    rng: XorShift64,
    calls: u64,
}

/// A deterministic fault schedule over named sites (see the module
/// docs).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    stall: Duration,
    sites: Mutex<HashMap<String, SiteState>>,
    injected: AtomicU64,
    rejected: u64,
}

impl FaultPlan {
    /// An empty plan (no sites — nothing fires) under a seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            stall: Duration::from_millis(100),
            sites: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
            rejected: 0,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Schedule `site` to fire each call with probability `p` (clamped
    /// to `[0, 1]`), drawn from the site's own seeded stream.
    pub fn with_prob(self, site: &str, p: f64) -> Self {
        self.add(site, Mode::Prob(p.clamp(0.0, 1.0)))
    }

    /// Schedule `site` to fire exactly on its `nth` call (1-based).
    pub fn with_at(self, site: &str, nth: u64) -> Self {
        self.add(site, Mode::At(nth.max(1)))
    }

    /// Set the stall duration used by stall-flavoured sites.
    pub fn with_stall(mut self, stall: Duration) -> Self {
        self.stall = stall;
        self
    }

    fn add(self, site: &str, mode: Mode) -> Self {
        let rng = XorShift64::new(self.seed ^ fnv64(site.as_bytes()));
        self.sites.lock().expect("fault plan poisoned").insert(
            site.to_string(),
            SiteState {
                mode,
                rng,
                calls: 0,
            },
        );
        self
    }

    /// How long a stall-flavoured fault should sleep.
    pub fn stall(&self) -> Duration {
        self.stall
    }

    /// Faults fired so far, across all sites.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Plan-spec entries rejected while parsing (see [`FaultPlan::with_spec`]).
    pub fn rejected_entries(&self) -> u64 {
        self.rejected
    }

    /// Parse a comma-separated spec (`site=PROB` / `site@NTH` entries, the
    /// `BOLT_FAULT_PLAN` grammar) into the plan. Malformed entries never
    /// panic — fault injection must not be able to take the process down by
    /// itself. Each reject is counted (see [`FaultPlan::rejected_entries`])
    /// and reported as a `fault.plan.reject` event through the ambient
    /// `bolt_obs` trace sink, carrying the offending entry and a reason.
    pub fn with_spec(mut self, spec: &str) -> Self {
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let reason = if let Some((name, p)) = entry.split_once('=') {
                match p.trim().parse::<f64>() {
                    Ok(p) => {
                        self = self.with_prob(name.trim(), p);
                        continue;
                    }
                    Err(_) => "bad probability",
                }
            } else if let Some((name, n)) = entry.split_once('@') {
                match n.trim().parse::<u64>() {
                    Ok(n) => {
                        self = self.with_at(name.trim(), n);
                        continue;
                    }
                    Err(_) => "bad call index",
                }
            } else {
                "want site=PROB or site@NTH"
            };
            self.rejected += 1;
            bolt_obs::trace::emit(
                "fault.plan.reject",
                &[("entry", entry.into()), ("reason", reason.into())],
            );
        }
        self
    }

    /// Ask whether `site` fires on this call. Sites the plan never named
    /// always answer `false` (and keep no state).
    pub fn fires(&self, site: &str) -> bool {
        let (fire, call) = {
            let mut sites = self.sites.lock().expect("fault plan poisoned");
            let Some(state) = sites.get_mut(site) else {
                return false;
            };
            state.calls += 1;
            let fire = match state.mode {
                Mode::Prob(p) => state.rng.next_f64() < p,
                Mode::At(n) => state.calls == n,
            };
            (fire, state.calls)
        };
        if fire {
            self.injected.fetch_add(1, Ordering::Relaxed);
            bolt_obs::trace::emit(
                "fault.inject",
                &[("site", site.into()), ("call", call.into())],
            );
        }
        fire
    }

    /// `fires` packaged as an injected [`io::Error`] — the shape every
    /// I/O shim wants: `None` means proceed, `Some(e)` means fail with
    /// `e` (whose message names the site, so test output reads).
    pub fn io_fault(&self, site: &str, what: &str) -> Option<io::Error> {
        self.fires(site)
            .then(|| io::Error::other(format!("injected fault at {site}: {what}")))
    }

    /// Parse a plan from `BOLT_FAULT_SEED` / `BOLT_FAULT_PLAN` (plus
    /// `BOLT_FAULT_STALL_MS` for stall sites). `None` when neither
    /// variable is set. A seed without a plan yields an inert plan (no
    /// sites) — useful for CI matrices whose tests build their own
    /// site schedules from [`FaultPlan::seed`]. Malformed entries are
    /// rejected (counted, traced), never a panic: fault injection must
    /// not be able to take the process down by itself.
    pub fn from_env() -> Option<Arc<FaultPlan>> {
        let seed_var = std::env::var("BOLT_FAULT_SEED").ok();
        let plan_var = std::env::var("BOLT_FAULT_PLAN").ok();
        if seed_var.is_none() && plan_var.is_none() {
            return None;
        }
        let seed = seed_var
            .as_deref()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0xB017_FA57);
        let mut plan = FaultPlan::seeded(seed);
        if let Ok(ms) = std::env::var("BOLT_FAULT_STALL_MS") {
            if let Ok(ms) = ms.trim().parse::<u64>() {
                plan = plan.with_stall(Duration::from_millis(ms));
            }
        }
        if let Some(spec) = plan_var {
            plan = plan.with_spec(&spec);
        }
        Some(Arc::new(plan))
    }
}

/// The process-wide ambient plan, parsed from the environment once (see
/// [`FaultPlan::from_env`]). `None` — the common case — costs one
/// initialized-`OnceLock` load per query.
pub fn ambient() -> Option<&'static Arc<FaultPlan>> {
    static AMBIENT: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
    AMBIENT.get_or_init(FaultPlan::from_env).as_ref()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unnamed_sites_never_fire() {
        let plan = FaultPlan::seeded(7).with_prob("a", 1.0);
        assert!(plan.fires("a"));
        for _ in 0..100 {
            assert!(!plan.fires("b"));
        }
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn probability_schedules_are_seed_deterministic() {
        let draw = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed).with_prob("s", 0.5);
            (0..64).map(|_| plan.fires("s")).collect()
        };
        assert_eq!(draw(1), draw(1), "same seed, same schedule");
        assert_ne!(draw(1), draw(2), "different seeds diverge");
        let ones = draw(1).iter().filter(|&&b| b).count();
        assert!((8..=56).contains(&ones), "p=0.5 fires sometimes: {ones}");
    }

    #[test]
    fn sites_draw_independent_streams() {
        let plan = FaultPlan::seeded(3).with_prob("a", 0.5).with_prob("b", 0.5);
        let a: Vec<bool> = (0..64).map(|_| plan.fires("a")).collect();
        let b: Vec<bool> = (0..64).map(|_| plan.fires("b")).collect();
        assert_ne!(a, b, "per-site streams must not be correlated");
    }

    #[test]
    fn at_schedules_fire_exactly_once() {
        let plan = FaultPlan::seeded(0).with_at("s", 3);
        let fired: Vec<bool> = (0..6).map(|_| plan.fires("s")).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn io_faults_name_the_site() {
        let plan = FaultPlan::seeded(0).with_at("store.rename", 1);
        let e = plan
            .io_fault(site::STORE_RENAME, "crash before rename")
            .expect("scheduled");
        assert!(e.to_string().contains("store.rename"), "{e}");
        assert!(plan.io_fault(site::STORE_RENAME, "again").is_none());
    }

    #[test]
    fn spec_parsing_counts_rejects() {
        let plan = FaultPlan::seeded(1)
            .with_spec("store.rename=0.5, serve.read.err@3,bogus,x=notafloat,y@NaN, ,z=1.0");
        assert_eq!(plan.rejected_entries(), 3, "bogus, x=, y@ are rejected");
        // The well-formed entries still landed.
        assert!((0..10).any(|_| plan.fires("z")), "z=1.0 accepted");
        let fired: Vec<bool> = (0..4).map(|_| plan.fires("serve.read.err")).collect();
        assert_eq!(fired, vec![false, false, true, false]);
    }

    #[test]
    fn clean_spec_rejects_nothing() {
        let plan = FaultPlan::seeded(2).with_spec("a=0.25,b@7");
        assert_eq!(plan.rejected_entries(), 0);
    }

    #[test]
    fn edge_probabilities_are_exact() {
        let plan = FaultPlan::seeded(9)
            .with_prob("never", 0.0)
            .with_prob("always", 1.0);
        for _ in 0..50 {
            assert!(!plan.fires("never"));
            assert!(plan.fires("always"));
        }
    }
}
