//! Structured JSONL event tracing.
//!
//! One schema for every event in the process: a line of JSON with a
//! monotonic microsecond timestamp, a sequence number, an event name, and
//! flat key/value fields:
//!
//! ```json
//! {"ts_us":1042,"seq":3,"event":"serve.conn.close","id":7,"reason":"eof"}
//! ```
//!
//! Tracing is off by default and ambient when on: setting `BOLT_TRACE=path`
//! makes [`emit`] append to `path`. When the variable is unset, [`emit`]
//! costs a single `OnceLock` load and branch — the same zero-cost-when-off
//! discipline as `bolt_fault`.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Environment variable holding the trace output path.
pub const TRACE_ENV: &str = "BOLT_TRACE";

/// A field value in a trace event.
#[derive(Clone, Copy, Debug)]
pub enum Value<'a> {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(&'a str),
}

impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value<'_> {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}

/// Append-only JSONL sink. Every [`TraceSink::emit`] writes (and flushes)
/// one line, so external scrapers see events as they happen.
pub struct TraceSink {
    out: Mutex<BufWriter<File>>,
    start: Instant,
    // Last timestamp handed out, so ts_us is non-decreasing even if two
    // threads race between reading the clock and taking the writer lock.
    last_ts: AtomicU64,
    seq: AtomicU64,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("events", &self.events())
            .finish_non_exhaustive()
    }
}

impl TraceSink {
    /// Open (appending) a sink writing to `path`.
    pub fn to_path(path: &Path) -> io::Result<TraceSink> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(TraceSink {
            out: Mutex::new(BufWriter::new(file)),
            start: Instant::now(),
            last_ts: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        })
    }

    /// Number of events emitted so far.
    pub fn events(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Write one event line. Field names must be plain identifiers; values
    /// are JSON-escaped. IO errors are swallowed — tracing must never take
    /// the traced system down.
    pub fn emit(&self, event: &str, fields: &[(&str, Value)]) {
        let now = self.start.elapsed().as_micros() as u64;
        let ts = self.last_ts.fetch_max(now, Ordering::Relaxed).max(now);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut line = String::with_capacity(96);
        line.push_str("{\"ts_us\":");
        line.push_str(&ts.to_string());
        line.push_str(",\"seq\":");
        line.push_str(&seq.to_string());
        line.push_str(",\"event\":\"");
        escape_into(&mut line, event);
        line.push('"');
        for (k, v) in fields {
            line.push_str(",\"");
            escape_into(&mut line, k);
            line.push_str("\":");
            match v {
                Value::U64(n) => line.push_str(&n.to_string()),
                Value::I64(n) => line.push_str(&n.to_string()),
                Value::F64(x) if x.is_finite() => line.push_str(&format!("{x}")),
                Value::F64(_) => line.push_str("null"),
                Value::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
                Value::Str(s) => {
                    line.push('"');
                    escape_into(&mut line, s);
                    line.push('"');
                }
            }
        }
        line.push_str("}\n");
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(line.as_bytes());
            let _ = out.flush();
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// The ambient sink configured by `BOLT_TRACE`, if any. Resolved once per
/// process; an unopenable path disables tracing with a single warning.
pub fn ambient() -> Option<&'static Arc<TraceSink>> {
    static AMBIENT: OnceLock<Option<Arc<TraceSink>>> = OnceLock::new();
    AMBIENT
        .get_or_init(|| {
            let path = std::env::var_os(TRACE_ENV)?;
            if path.is_empty() {
                return None;
            }
            match TraceSink::to_path(Path::new(&path)) {
                Ok(sink) => Some(Arc::new(sink)),
                Err(err) => {
                    eprintln!("bolt-obs: cannot open {TRACE_ENV}={path:?}: {err}; tracing off");
                    None
                }
            }
        })
        .as_ref()
}

/// Emit an event to the ambient sink; a no-op (one load + branch) when
/// `BOLT_TRACE` is unset.
pub fn emit(event: &str, fields: &[(&str, Value)]) {
    if let Some(sink) = ambient() {
        sink.emit(event, fields);
    }
}

/// True when the ambient sink is active — lets callers skip building
/// expensive field values when tracing is off.
pub fn enabled() -> bool {
    ambient().is_some()
}

/// Events emitted through the ambient sink so far (0 when tracing is off).
pub fn ambient_events() -> u64 {
    ambient().map(|s| s.events()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_writes_parseable_jsonl() {
        let dir = std::env::temp_dir().join(format!("bolt-obs-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let _ = std::fs::remove_file(&path);
        let sink = TraceSink::to_path(&path).unwrap();
        sink.emit("unit.test", &[("n", 7u64.into()), ("ok", true.into())]);
        sink.emit(
            "unit.esc",
            &[("s", "a\"b\\c\nd".into()), ("neg", (-4i64).into())],
        );
        assert_eq!(sink.events(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ts_us\":"));
        assert!(lines[0].contains("\"event\":\"unit.test\""));
        assert!(lines[0].contains("\"n\":7"));
        assert!(lines[0].contains("\"ok\":true"));
        assert!(lines[1].contains("\"s\":\"a\\\"b\\\\c\\nd\""));
        assert!(lines[1].contains("\"neg\":-4"));
        // Timestamps and sequence numbers are monotone.
        let seqs: Vec<u64> = lines
            .iter()
            .map(|l| {
                let i = l.find("\"seq\":").unwrap() + 6;
                l[i..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(seqs, vec![0, 1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ambient_off_by_default() {
        // The test process does not set BOLT_TRACE, so emit must be a no-op.
        if std::env::var_os(TRACE_ENV).is_none() {
            emit("unit.noop", &[]);
            assert!(!enabled());
            assert_eq!(ambient_events(), 0);
        }
    }
}
