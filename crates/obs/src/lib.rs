//! `bolt_obs` — unified observability substrate: named metrics, log2
//! latency histograms, and structured JSONL event tracing.
//!
//! Three pieces, one discipline (zero cost when off, lock-free when on):
//!
//! * **[`Registry`]** — a named home for [`Counter`]s, [`Gauge`]s, and
//!   [`Histogram`]s. Handles are `Arc`s minted once and bumped with relaxed
//!   atomics; the registry lock is never taken on the sample path.
//!   [`global()`] is the process-wide default; components needing isolated
//!   numbers (each `ContractStore`, each serve core) mint their own.
//! * **[`Histogram`]** — 64 log2 buckets covering all of `u64`, recorded
//!   directly or via RAII [`Span`] guards (elapsed nanoseconds on drop).
//!   [`HistogramSnapshot`]s merge associatively and derive
//!   p50/p90/p99/max, so sharded registries sum into one view.
//! * **[`trace`]** — one JSONL event schema (`ts_us`, `seq`, `event`,
//!   flat fields) written through an ambient sink activated by
//!   `BOLT_TRACE=path`. Connection lifecycle, fault injections, store
//!   quarantine/heal, and cache evictions all land in the same file.
//!
//! [`Snapshot::to_prometheus`] renders any snapshot as Prometheus text
//! exposition for file-based scraping (`bolt serve --metrics-text`).

mod metrics;
pub mod trace;

pub use metrics::{
    bucket_of, bucket_upper, global, Counter, Gauge, Histogram, HistogramSnapshot, Registry,
    Snapshot, Span, HIST_BUCKETS,
};
pub use trace::{TraceSink, Value, TRACE_ENV};
