//! Counters, gauges, and log2-bucketed latency histograms behind a named
//! registry.
//!
//! Everything here is lock-free on the record path: a [`Counter`] is one
//! relaxed `fetch_add`, a [`Histogram`] record is three relaxed atomic ops
//! plus a `fetch_max`. The registry mutex is only taken when minting a
//! handle or taking a snapshot, never per sample — callers on hot paths
//! mint their `Arc` handles once and hold them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one; returns the value *after* the increment.
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (e.g. active connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: bucket `i` holds samples `v` with
/// `floor(log2(v)) == i` (zero lands in bucket 0), so 64 buckets cover the
/// whole `u64` range.
pub const HIST_BUCKETS: usize = 64;

/// Bucket index for a sample: `floor(log2(v))`, with 0 mapped to bucket 0.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (63 - v.max(1).leading_zeros()) as usize
}

/// Inclusive upper edge of bucket `i` — the representative value reported
/// for percentiles that land in the bucket.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// Lock-free log2-bucketed histogram. Values are dimensionless `u64`s; the
/// convention throughout bolt is **nanoseconds** for latency series (names
/// render with a `_ns` suffix in Prometheus exposition).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Start an RAII span; the elapsed wall time in nanoseconds is recorded
    /// when the guard drops.
    pub fn span(self: &Arc<Self>) -> Span {
        Span {
            hist: Arc::clone(self),
            start: Instant::now(),
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state. Not a cross-field atomic snapshot: under
    /// concurrent writers `count`/`sum` may trail the bucket array by a few
    /// in-flight samples, which is fine for monitoring.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// RAII timer: records elapsed nanoseconds into its histogram on drop.
#[derive(Debug)]
pub struct Span {
    hist: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Elapsed nanoseconds so far (the value that will be recorded on drop,
    /// modulo the remaining run time).
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

/// Owned, mergeable copy of a histogram's state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Fold `other` into `self`. Merging is commutative and associative, so
    /// per-shard snapshots can be combined in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Value at quantile `p` in `(0, 1]`, reported as the inclusive upper
    /// edge of the bucket the rank lands in, clamped to the observed max.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Named home for counters, gauges, and histograms. Handles are get-or-create
/// and shared: two `counter("x")` calls return the same `Arc`.
///
/// Registries are instantiable so that independent components (two servers in
/// one test process, say) keep isolated numbers; [`global`] is the
/// process-wide default for ambient instrumentation.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(c) = inner.counters.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        inner.counters.insert(name.to_string(), Arc::clone(&c));
        c
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(g) = inner.gauges.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        inner.gauges.insert(name.to_string(), Arc::clone(&g));
        g
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(h) = inner.histograms.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        inner.histograms.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Name-sorted copy of every series in the registry.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Registry`]: name-sorted series, mergeable with
/// other snapshots (sharded registries sum; see [`Snapshot::merge`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Fold `other` into `self`: counters and gauges sum, histograms merge,
    /// series missing on either side are kept. Output stays name-sorted, so
    /// the merge is associative and commutative.
    pub fn merge(&mut self, other: &Snapshot) {
        fn fold<V: Clone, F: Fn(&mut V, &V)>(
            dst: &mut Vec<(String, V)>,
            src: &[(String, V)],
            add: F,
        ) {
            for (name, v) in src {
                match dst.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                    Ok(i) => add(&mut dst[i].1, v),
                    Err(i) => dst.insert(i, (name.clone(), v.clone())),
                }
            }
        }
        fold(&mut self.counters, &other.counters, |a, b| {
            *a = a.saturating_add(*b)
        });
        fold(&mut self.gauges, &other.gauges, |a, b| {
            *a = a.saturating_add(*b)
        });
        fold(&mut self.histograms, &other.histograms, |a, b| a.merge(b));
    }

    /// Render the snapshot as Prometheus text exposition (format 0.0.4).
    /// Metric names are prefixed with `bolt_` and sanitized (`.` and `-`
    /// become `_`); histograms are emitted in the native cumulative-bucket
    /// form with nanosecond `le` edges and a `_ns` unit suffix.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = promname(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = promname(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = format!("{}_ns", promname(name));
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum += c;
                out.push_str(&format!("{n}_bucket{{le=\"{}\"}} {cum}\n", bucket_upper(i)));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n", h.sum));
            out.push_str(&format!("{n}_count {}\n", h.count));
        }
        out
    }
}

fn promname(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("bolt_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// The process-wide default registry. Components that want isolation (the
/// serve core, each `ContractStore`) mint their own `Registry` instead.
pub fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        for k in 1..63 {
            let v = 1u64 << k;
            assert_eq!(bucket_of(v), k, "2^{k} must open bucket {k}");
            assert_eq!(
                bucket_of(v - 1),
                k - 1,
                "2^{k}-1 must close bucket {}",
                k - 1
            );
            assert_eq!(bucket_of(v + 1), k, "2^{k}+1 stays in bucket {k}");
        }
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(3), 15);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn concurrent_recording_sums_exactly() {
        let h = Arc::new(Histogram::new());
        let per_thread = 10_000u64;
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8 * per_thread);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 8 * per_thread);
        // sum of 0..80000
        assert_eq!(snap.sum, (8 * per_thread) * (8 * per_thread - 1) / 2);
        assert_eq!(snap.max, 8 * per_thread - 1);
    }

    #[test]
    fn percentiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // p50 rank = 500 → value 500 lives in bucket 8 ([256, 512)), upper 511.
        assert_eq!(s.p50(), 511);
        // p99 rank = 990 → bucket 9 ([512, 1024)), upper 1023 clamped to max.
        assert_eq!(s.p99(), 1000);
        assert_eq!(s.max, 1000);
        assert_eq!(HistogramSnapshot::default().p50(), 0);
    }

    #[test]
    fn snapshot_merge_is_associative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 5, 9]);
        let b = mk(&[100, 200]);
        let c = mk(&[7]);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.count, 6);
        assert_eq!(ab_c.sum, 1 + 5 + 9 + 100 + 200 + 7);
    }

    #[test]
    fn registry_snapshot_merge_associative() {
        let mk = |pairs: &[(&str, u64)]| {
            let r = Registry::new();
            for (n, v) in pairs {
                r.counter(n).add(*v);
                r.histogram("lat").record(*v);
            }
            r.snapshot()
        };
        let a = mk(&[("x", 1), ("y", 2)]);
        let b = mk(&[("y", 10), ("z", 3)]);
        let c = mk(&[("x", 100)]);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.counter("x"), Some(101));
        assert_eq!(ab_c.counter("y"), Some(12));
        assert_eq!(ab_c.histogram("lat").unwrap().count, 5);
    }

    #[test]
    fn registry_handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("serve.requests");
        let b = r.counter("serve.requests");
        a.inc();
        b.add(2);
        assert_eq!(r.snapshot().counter("serve.requests"), Some(3));
        r.gauge("active").set(-4);
        assert_eq!(r.snapshot().gauge("active"), Some(-4));
    }

    #[test]
    fn span_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("lat");
        {
            let _s = h.span();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.max >= 1_000_000, "slept 1ms, recorded {}", snap.max);
    }

    #[test]
    fn prometheus_rendering() {
        let r = Registry::new();
        r.counter("serve.requests").add(7);
        r.gauge("serve.active_connections").set(2);
        r.histogram("serve.req.query").record(1500);
        r.histogram("serve.req.query").record(3000);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE bolt_serve_requests counter"));
        assert!(text.contains("bolt_serve_requests 7"));
        assert!(text.contains("bolt_serve_active_connections 2"));
        assert!(text.contains("# TYPE bolt_serve_req_query_ns histogram"));
        assert!(text.contains("bolt_serve_req_query_ns_bucket{le=\"2047\"} 1"));
        assert!(text.contains("bolt_serve_req_query_ns_bucket{le=\"4095\"} 2"));
        assert!(text.contains("bolt_serve_req_query_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("bolt_serve_req_query_ns_sum 4500"));
        assert!(text.contains("bolt_serve_req_query_ns_count 2"));
    }
}
