//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion 0.5 API this workspace's
//! micro-benchmarks use — [`Criterion::bench_function`], the
//! [`criterion_group!`]/[`criterion_main!`] macros, and [`black_box`] —
//! with a simple timing loop in place of the statistical engine: warm up,
//! then run batches until the measurement time elapses, and report the
//! median batch's per-iteration time.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing hook handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called in a tight loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark driver (a small subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2);
        self.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark and print its median per-iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: find an iteration count that fills one sample slot.
        let mut iters = 1u64;
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut per_iter = Duration::from_nanos(100);
        while Instant::now() < warm_deadline {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed > Duration::ZERO {
                per_iter = b.elapsed / iters as u32;
            }
            iters = iters.saturating_mul(2).min(1 << 30);
        }
        let slot = self.measurement_time / self.sample_size as u32;
        let iters_per_sample =
            (slot.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed / iters_per_sample as u32);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        println!(
            "{id:<32} time: [{} {} {}]",
            fmt_duration(lo),
            fmt_duration(median),
            fmt_duration(hi),
        );
        self
    }

    /// Upstream finalizer; nothing to flush here.
    pub fn final_summary(&mut self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Group benchmark functions under one config (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut count = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        assert!(count > 0, "the closure must actually run");
    }

    #[test]
    fn groups_compose() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1u32));
        }
        criterion_group! {
            name = benches;
            config = Criterion::default()
                .sample_size(2)
                .measurement_time(Duration::from_millis(4))
                .warm_up_time(Duration::from_millis(1));
            targets = target
        }
        benches();
    }
}
