//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait (`prop_map`, `prop_recursive`,
//! `boxed`), [`any`], [`Just`], range and tuple strategies,
//! `prop::collection::vec`, the [`proptest!`] macro (including
//! `#![proptest_config(...)]`), and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for an offline shim: failing
//! cases are **not shrunk** (the panic reports the case number and seed
//! instead), and generation is driven by the workspace's deterministic
//! `rand` stand-in, so failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SampleUniform, SeedableRng, Standard};

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the instrumented-simulation
        // properties fast while still exercising plenty of cases.
        ProptestConfig { cases: 64 }
    }
}

/// The generation-time random source handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic per-test source; `salt` separates the streams of
    /// different properties so they do not explore lock-step values.
    pub fn deterministic(salt: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(0xB01D_FACE ^ salt))
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw from an inclusive span.
    pub fn below(&mut self, n: u64) -> u64 {
        self.0.gen_range(0..n)
    }
}

/// A value generator (mirrors `proptest::strategy::Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Recursive strategies: `recurse` receives the strategy for the
    /// previous depth and wraps it one level deeper. `depth` bounds the
    /// nesting; the size hints are accepted for API compatibility and
    /// ignored (no shrinking here).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so generated depths vary
            // instead of always reaching the maximum.
            let deeper = recurse(cur).boxed();
            cur = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        cur
    }
}

/// Type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!` desugars to
/// this).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "empty union");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias toward structure-revealing extremes now and then:
                // all-zeros, all-ones, and small values find edge cases
                // plain uniform draws rarely hit.
                match rng.below(16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => (rng.next_u64() & 0xF) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
    BoxedStrategy(Rc::new(T::arbitrary))
}

impl<T: SampleUniform + Standard + 'static> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(self.clone())
    }
}

impl<T: SampleUniform + Standard + 'static> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_tuple! {
    (0 S0)
    (0 S0, 1 S1)
    (0 S0, 1 S1, 2 S2)
    (0 S0, 1 S1, 2 S2, 3 S3)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5)
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeBounds, Strategy, TestRng};

    /// Strategy for vectors of `element` with a length drawn from
    /// `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        bounds: SizeBounds,
    }

    /// `Vec<T>` strategy (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeBounds>) -> VecStrategy<S> {
        VecStrategy {
            element,
            bounds: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.bounds.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Length bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeBounds {
    lo: usize,
    hi: usize, // inclusive
}

impl SizeBounds {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeBounds {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end);
        SizeBounds {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeBounds {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeBounds {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeBounds {
    fn from(n: usize) -> Self {
        SizeBounds { lo: n, hi: n }
    }
}

pub mod prelude {
    //! Everything a property test file needs, re-exported.

    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };

    pub mod prop {
        //! `prop::` namespace as upstream exposes it.
        pub use crate::collection;
    }
}

/// Salted FNV-1a over the property name: gives each property its own
/// deterministic random stream.
pub fn name_salt(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// `prop_assert!`: plain assert (no shrinking machinery to unwind).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!`: plain assert_eq.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!`: plain assert_ne.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The property-test macro. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     /// Doc comment.
///     #[test]
///     fn prop(x in some_strategy(), y: u64) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr); ) => {};
    (@fns ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __salt = $crate::name_salt(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng = $crate::TestRng::deterministic(__salt);
            for __case in 0..__cfg.cases {
                $crate::proptest!(@bind __rng [$($params)*,] $body);
            }
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@bind $rng:ident [$(,)?] $body:block) => { $body };
    (@bind $rng:ident [$p:ident : $t:ty, $($rest:tt)*] $body:block) => {
        let $p: $t = <$t as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng [$($rest)*] $body)
    };
    (@bind $rng:ident [$p:pat in $s:expr, $($rest:tt)*] $body:block) => {
        let $p = $crate::Strategy::generate(&($s), &mut $rng);
        $crate::proptest!(@bind $rng [$($rest)*] $body)
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        /// Mixed binding forms parse and generate in-range values.
        #[test]
        fn mixed_bindings(x in 1u32..10, y: bool, (a, b) in (0u8..4, 5u8..=6)) {
            prop_assert!((1..10).contains(&x));
            let _ = y;
            prop_assert!(a < 4);
            prop_assert!(b == 5 || b == 6);
        }

        /// Recursion depth is bounded by the declared depth.
        #[test]
        fn recursive_depth_is_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 3, "depth {} tree {:?}", depth(&t), t);
        }

        /// Collection sizes respect the bounds.
        #[test]
        fn vec_sizes(v in prop::collection::vec(any::<u16>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        /// prop_oneof picks each arm eventually (checked via tagging).
        #[test]
        fn oneof_varies(k in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&k));
        }
    }

    #[test]
    fn streams_are_deterministic_and_per_test() {
        let mut a = TestRng::deterministic(1);
        let mut b = TestRng::deterministic(1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
