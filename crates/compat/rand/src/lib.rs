//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace ships
//! the subset of the `rand` 0.8 API its code actually uses: the [`Rng`]
//! and [`SeedableRng`] traits and [`rngs::SmallRng`], backed by a
//! deterministic xoshiro256** generator (the same family the real
//! `SmallRng` uses on 64-bit targets). Streams are *not* bit-compatible
//! with upstream `rand`; everything in this workspace that consumes them
//! only needs determinism-per-seed and reasonable statistical quality.

use std::ops::{Range, RangeInclusive};

/// Values samplable uniformly from the generator's raw 64-bit output.
pub trait Standard: Sized {
    /// Build a value from raw generator output.
    fn from_raw(raw: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_raw(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_raw(raw: u64) -> Self {
        raw & 1 == 1
    }
}

impl Standard for f64 {
    fn from_raw(raw: u64) -> Self {
        // 53 random mantissa bits in [0, 1).
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniform ranges can be sampled over.
pub trait SampleUniform: Copy {
    /// Widen to `u64` for arithmetic.
    fn to_u64(self) -> u64;
    /// Narrow back (the sampled value always fits the original type).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Uniform draw from `[lo, hi]` (inclusive) without modulo bias beyond
/// what a single 64-bit multiply-shift introduces (negligible for the
/// range sizes used in this workspace).
fn uniform_inclusive(rng: &mut dyn RngCore, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi);
    let span = hi - lo;
    if span == u64::MAX {
        return rng.next_u64();
    }
    // Multiply-shift mapping of a 64-bit draw onto [0, span].
    let draw = rng.next_u64();
    lo + ((draw as u128 * (span as u128 + 1)) >> 64) as u64
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "cannot sample empty range");
        T::from_u64(uniform_inclusive(rng, lo, hi - 1))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "cannot sample empty range");
        T::from_u64(uniform_inclusive(rng, lo, hi))
    }
}

/// Object-safe raw generator core.
pub trait RngCore {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_raw(self.next_u64())
    }

    /// A uniform draw from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generators.

    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    Self::splitmix(&mut sm),
                    Self::splitmix(&mut sm),
                    Self::splitmix(&mut sm),
                    Self::splitmix(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u8 = r.gen_range(4..=24);
            assert!((4..=24).contains(&v));
            let w: u64 = r.gen_range(0..5);
            assert!(w < 5);
            let u: usize = r.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut r = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn full_range_draws_cover_extremes_eventually() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut any_high = false;
        for _ in 0..1000 {
            if r.gen::<u64>() > u64::MAX / 2 {
                any_high = true;
            }
        }
        assert!(any_high);
    }
}
