//! Property-based tests of the stateful library: semantic equivalence
//! against standard-library oracles and the contract conservatism
//! invariant under random operation sequences.

use bolt_expr::{PcvAssignment, Width};
use bolt_see::{ConcreteCtx, NfCtx};
use bolt_trace::{AddressSpace, Metric, NullTracer, RecordingTracer, StatefulCall};
use nf_lib::flow_table::{self, FlowTable, FlowTableOps, FlowTableParams, C_HIT, C_MISS, M_GET};
use nf_lib::lpm_dir24_8::{self, Dir24_8};
use nf_lib::lpm_trie::{self, LpmTrie};
use nf_lib::port_alloc::{self, AllocatorA, AllocatorB, PortAllocOps};
use nf_lib::registry::DsRegistry;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    Get(u8),
    Put(u8, u16),
    AdvanceAndExpire(u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Get),
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Op::Put(k, v)),
        (0u16..500).prop_map(Op::AdvanceAndExpire),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The flow table agrees with a HashMap-plus-manual-TTL oracle under
    /// arbitrary operation sequences.
    #[test]
    fn flow_table_matches_oracle(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut reg = DsRegistry::new();
        let params = FlowTableParams { capacity: 256, ttl_ns: 300 };
        let ids = flow_table::register::<1>(&mut reg, "t", "", params);
        let mut aspace = AddressSpace::new();
        let mut table = FlowTable::<1>::new(ids, params, &mut aspace);
        let mut oracle: HashMap<u64, (u64, u64)> = HashMap::new();
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Get(k) => {
                    let now_v = ctx.lit(now, Width::W64);
                    let kv = [ctx.lit(k as u64, Width::W64)];
                    let got = FlowTableOps::<_, 1>::get(&mut table, &mut ctx, &kv, now_v);
                    match oracle.get_mut(&(k as u64)) {
                        Some((v, ts)) => {
                            prop_assert_eq!(ctx.concrete_value(got.unwrap()), Some(*v));
                            *ts = now;
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
                Op::Put(k, v) => {
                    oracle.entry(k as u64).or_insert_with(|| {
                        let now_v = ctx.lit(now, Width::W64);
                        let kv = [ctx.lit(k as u64, Width::W64)];
                        let vv = ctx.lit(v as u64, Width::W64);
                        let stored =
                            FlowTableOps::<_, 1>::put(&mut table, &mut ctx, &kv, vv, now_v);
                        prop_assert!(stored);
                        (v as u64, now)
                    });
                }
                Op::AdvanceAndExpire(dt) => {
                    now += dt as u64;
                    let now_v = ctx.lit(now, Width::W64);
                    let e = FlowTableOps::<_, 1>::expire(&mut table, &mut ctx, now_v);
                    let cutoff = now.saturating_sub(params.ttl_ns);
                    let dead: Vec<u64> = oracle
                        .iter()
                        .filter(|(_, &(_, ts))| ts < cutoff)
                        .map(|(&k, _)| k)
                        .collect();
                    prop_assert_eq!(ctx.concrete_value(e), Some(dead.len() as u64));
                    for k in dead {
                        oracle.remove(&k);
                    }
                }
            }
            prop_assert_eq!(table.len(), oracle.len());
        }
    }

    /// Contract conservatism holds for every get under random state.
    #[test]
    fn get_contract_is_conservative(keys in prop::collection::vec(any::<u8>(), 1..80)) {
        let mut reg = DsRegistry::new();
        let params = FlowTableParams { capacity: 128, ttl_ns: u64::MAX / 2 };
        let ids = flow_table::register::<1>(&mut reg, "t", "", params);
        let mut aspace = AddressSpace::new();
        let mut table = FlowTable::<1>::new(ids, params, &mut aspace);
        {
            let mut t = NullTracer;
            let mut ctx = ConcreteCtx::new(&mut t);
            let now = ctx.lit(0, Width::W64);
            for &k in keys.iter().take(64) {
                let kv = [ctx.lit(k as u64, Width::W64)];
                let v = ctx.lit(1, Width::W64);
                if table.raw_get(&[k as u64]).is_none() {
                    let _ = FlowTableOps::<_, 1>::put(&mut table, &mut ctx, &kv, v, now);
                }
            }
        }
        for &probe in &keys {
            let mut rec = RecordingTracer::new();
            let hit = {
                let mut ctx = ConcreteCtx::new(&mut rec);
                let now = ctx.lit(1, Width::W64);
                let kv = [ctx.lit(probe as u64, Width::W64)];
                FlowTableOps::<_, 1>::get(&mut table, &mut ctx, &kv, now).is_some()
            };
            let (ic, ma) = bolt_trace::count_ic_ma(&rec.events);
            let case = reg.resolve(StatefulCall {
                ds: ids.ds,
                method: M_GET,
                case: if hit { C_HIT } else { C_MISS },
            });
            let mut env = PcvAssignment::new();
            env.set(ids.t, table.last_probe.0).set(ids.c, table.last_probe.1);
            prop_assert!(case.expr(Metric::Instructions).eval(&env) >= ic);
            prop_assert!(case.expr(Metric::MemAccesses).eval(&env) >= ma);
        }
    }

    /// DIR-24-8 and the binary trie implement the same LPM semantics.
    #[test]
    fn dir24_8_equals_trie(
        routes in prop::collection::vec((any::<u32>(), 1u8..=24, 1u16..100), 1..30),
        probes in prop::collection::vec(any::<u32>(), 1..60),
    ) {
        let mut reg = DsRegistry::new();
        let dids = lpm_dir24_8::register(&mut reg, "d");
        let tids = lpm_trie::register(&mut reg, "t", "trie");
        let mut aspace = AddressSpace::new();
        let mut dir = Dir24_8::new(dids, 16, 64, 0, &mut aspace);
        let mut trie = LpmTrie::new(tids, 1 << 16, 0, &mut aspace);
        for &(prefix, len, port) in &routes {
            let p = prefix & (!0u32 << (32 - len));
            dir.insert(p, len, port);
            trie.insert(p, len, port);
        }
        for &ip in &probes {
            prop_assert_eq!(dir.raw_lookup(ip), trie.raw_lookup(ip), "ip {:#x}", ip);
        }
    }

    /// Neither allocator ever double-allocates, and both recycle every
    /// freed port.
    #[test]
    fn allocators_never_double_allocate(script in prop::collection::vec(any::<bool>(), 1..300)) {
        let mut reg = DsRegistry::new();
        let ia = port_alloc::register_a(&mut reg, "a", 64, 1000);
        let ib = port_alloc::register_b(&mut reg, "b", 64, 1000);
        let mut aspace = AddressSpace::new();
        let mut a = AllocatorA::new(ia, 64, 1000, &mut aspace);
        let mut b = AllocatorB::new(ib, 64, 1000, &mut aspace);
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let mut live_a: HashSet<u64> = HashSet::new();
        let mut live_b: HashSet<u64> = HashSet::new();
        for &alloc in &script {
            if alloc {
                if let Some(p) = PortAllocOps::<_>::alloc(&mut a, &mut ctx) {
                    let pv = ctx.concrete_value(p).unwrap();
                    prop_assert!((1000..1064).contains(&pv));
                    prop_assert!(live_a.insert(pv), "A double-allocated {}", pv);
                }
                if let Some(p) = PortAllocOps::<_>::alloc(&mut b, &mut ctx) {
                    let pv = ctx.concrete_value(p).unwrap();
                    prop_assert!(live_b.insert(pv), "B double-allocated {}", pv);
                }
            } else {
                if let Some(&pv) = live_a.iter().next() {
                    live_a.remove(&pv);
                    let v = ctx.lit(pv, Width::W16);
                    PortAllocOps::<_>::free(&mut a, &mut ctx, v);
                }
                if let Some(&pv) = live_b.iter().next() {
                    live_b.remove(&pv);
                    let v = ctx.lit(pv, Width::W16);
                    PortAllocOps::<_>::free(&mut b, &mut ctx, v);
                }
            }
            prop_assert_eq!(a.available(), 64 - live_a.len());
            prop_assert_eq!(b.available(), 64 - live_b.len());
        }
    }
}
