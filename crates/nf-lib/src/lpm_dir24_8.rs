//! DPDK-style DIR-24-8 longest-prefix-match table.
//!
//! The paper's LPM router uses DPDK's two-tier lookup table (§5.1): any
//! packet whose matched prefix is ≤ 24 bits costs exactly one table load;
//! longer matches cost a second load into an overflow `tbl8` group. The
//! contract therefore has two constant cases — which is why the paper's
//! LPM1 (unconstrained, worst ⇒ two loads) and LPM2 (≤ 24-bit matches,
//! one load) classes exist.
//!
//! The first-level width is configurable (`first_bits`), so unit tests can
//! run with a 2^16-entry first level while benches use the full 2^24.

use bolt_expr::{PerfExpr, Width};
use bolt_see::{ConcreteCtx, NfCtx};
use bolt_trace::{AddressSpace, DsId, InstrClass, MemRegion, RecordingTracer, StatefulCall};

use crate::registry::{CaseContract, DsContract, DsRegistry, MethodContract};

/// The single method.
pub const M_LOOKUP: u16 = 0;
/// Matched prefix ≤ first_bits: single load.
pub const C_SHORT: u16 = 0;
/// Matched prefix > first_bits: two loads.
pub const C_LONG: u16 = 1;

/// Entry flags in the first-level table.
const VALID: u32 = 1 << 31;
const GROUP: u32 = 1 << 30;

/// Ids handle.
#[derive(Clone, Copy, Debug)]
pub struct Dir24_8Ids {
    /// Registry instance id.
    pub ds: DsId,
}

/// Operations shared by the concrete table and its model.
pub trait Dir24_8Ops<C: NfCtx> {
    /// Look up the forwarding port for a destination address.
    fn lookup(&mut self, ctx: &mut C, ip: C::Val) -> C::Val;
}

/// The concrete, instrumented table.
#[derive(Debug, Clone)]
pub struct Dir24_8 {
    #[allow(dead_code)] // kept: instances carry their registry identity
    ids: Dir24_8Ids,
    first_bits: u8,
    default_port: u16,
    tbl24: Vec<u32>,
    len24: Vec<u8>,
    tbl8: Vec<u32>,
    len8: Vec<u8>,
    r_tbl24: MemRegion,
    r_tbl8: MemRegion,
    max_groups: usize,
    groups_used: usize,
    /// Whether the last lookup took the long (two-load) path.
    pub last_was_long: bool,
}

impl Dir24_8 {
    /// Build an empty table. `first_bits` is the first-level index width
    /// (24 in DPDK; smaller in tests). `max_groups` bounds tbl8 usage.
    pub fn new(
        ids: Dir24_8Ids,
        first_bits: u8,
        max_groups: usize,
        default_port: u16,
        aspace: &mut AddressSpace,
    ) -> Self {
        assert!((8..=24).contains(&first_bits));
        let n = 1usize << first_bits;
        Dir24_8 {
            ids,
            first_bits,
            default_port,
            tbl24: vec![0; n],
            len24: vec![0; n],
            tbl8: vec![0; max_groups * 256],
            len8: vec![0; max_groups * 256],
            r_tbl24: aspace.alloc_table(n as u64 * 4),
            r_tbl8: aspace.alloc_table((max_groups * 256) as u64 * 4),
            max_groups,
            groups_used: 0,
            last_was_long: false,
        }
    }

    /// Insert a route (control plane; uninstrumented). Longer prefixes
    /// take precedence, matching DPDK semantics.
    pub fn insert(&mut self, prefix: u32, len: u8, port: u16) {
        assert!((1..=32).contains(&len));
        let fb = self.first_bits;
        if len <= fb {
            // Fill the covered range of the first-level table.
            let span = 1usize << (fb - len);
            let start = (prefix >> (32 - fb)) as usize;
            for i in start..start + span {
                if self.tbl24[i] & GROUP != 0 {
                    // Propagate into the group as a shorter match. Equal
                    // lengths overwrite: a later insert of the same prefix
                    // is a routing update.
                    let g = (self.tbl24[i] & 0xFFFF) as usize;
                    for j in 0..256 {
                        if self.len8[g * 256 + j] <= len {
                            self.tbl8[g * 256 + j] = VALID | port as u32;
                            self.len8[g * 256 + j] = len;
                        }
                    }
                } else if self.len24[i] <= len {
                    self.tbl24[i] = VALID | port as u32;
                    self.len24[i] = len;
                }
            }
        } else {
            assert!(fb == 24 || len <= fb + 8, "suffix must fit the group");
            let idx = (prefix >> (32 - fb)) as usize;
            let g = if self.tbl24[idx] & GROUP != 0 {
                (self.tbl24[idx] & 0xFFFF) as usize
            } else {
                assert!(self.groups_used < self.max_groups, "out of tbl8 groups");
                let g = self.groups_used;
                self.groups_used += 1;
                // Seed the group with the existing shorter match.
                let (seed, seed_len) = if self.tbl24[idx] & VALID != 0 {
                    (self.tbl24[idx] & 0xFFFF, self.len24[idx])
                } else {
                    (0, 0)
                };
                for j in 0..256 {
                    self.tbl8[g * 256 + j] = if seed_len > 0 { VALID | seed } else { 0 };
                    self.len8[g * 256 + j] = seed_len;
                }
                self.tbl24[idx] = VALID | GROUP | g as u32;
                g
            };
            let shift = 32 - fb - 8;
            let sub = ((prefix >> shift) & 0xFF) as usize;
            let span = 1usize << (fb + 8 - len).min(8);
            for j in sub..(sub + span).min(256) {
                if self.len8[g * 256 + j] <= len {
                    self.tbl8[g * 256 + j] = VALID | port as u32;
                    self.len8[g * 256 + j] = len;
                }
            }
        }
    }

    /// Uninstrumented oracle lookup.
    pub fn raw_lookup(&self, ip: u32) -> u16 {
        let idx = (ip >> (32 - self.first_bits)) as usize;
        let e = self.tbl24[idx];
        if e & GROUP != 0 {
            let g = (e & 0xFFFF) as usize;
            let shift = 32 - self.first_bits - 8;
            let sub = ((ip >> shift) & 0xFF) as usize;
            let e8 = self.tbl8[g * 256 + sub];
            if e8 & VALID != 0 {
                return (e8 & 0xFFFF) as u16;
            }
            return self.default_port;
        }
        if e & VALID != 0 {
            return (e & 0xFFFF) as u16;
        }
        self.default_port
    }
}

impl<C: NfCtx> Dir24_8Ops<C> for Dir24_8 {
    fn lookup(&mut self, ctx: &mut C, ip: C::Val) -> C::Val {
        let ipv = ctx.concrete_value(ip).expect("concrete address") as u32;
        let t = ctx.tracer();
        t.instr(InstrClass::Call, 1);
        // idx = ip >> (32 - fb); load tbl24[idx]; flag tests.
        t.alu(1);
        let idx = (ipv >> (32 - self.first_bits)) as usize;
        t.mem_read(self.r_tbl24.addr(idx as u64 * 4), 4);
        t.alu(2);
        t.instr(InstrClass::Branch, 1);
        let e = self.tbl24[idx];
        let port = if e & GROUP != 0 {
            self.last_was_long = true;
            // Second-level: group base + low byte index.
            t.alu(3);
            let g = (e & 0xFFFF) as usize;
            let shift = 32 - self.first_bits - 8;
            let sub = ((ipv >> shift) & 0xFF) as usize;
            t.mem_read(self.r_tbl8.addr((g * 256 + sub) as u64 * 4), 4);
            t.alu(2);
            t.instr(InstrClass::Branch, 1);
            let e8 = self.tbl8[g * 256 + sub];
            if e8 & VALID != 0 {
                (e8 & 0xFFFF) as u16
            } else {
                self.default_port
            }
        } else {
            self.last_was_long = false;
            t.alu(2);
            t.instr(InstrClass::Branch, 1);
            if e & VALID != 0 {
                (e & 0xFFFF) as u16
            } else {
                self.default_port
            }
        };
        t.instr(InstrClass::Ret, 1);
        ctx.lit(port as u64, Width::W16)
    }
}

/// Symbolic model: forks the short/long case and returns a fresh port.
#[derive(Clone, Copy, Debug)]
pub struct Dir24_8Model {
    ids: Dir24_8Ids,
}

impl Dir24_8Model {
    /// Model for a registered instance.
    pub fn new(ids: Dir24_8Ids) -> Self {
        Dir24_8Model { ids }
    }
}

impl<C: NfCtx> Dir24_8Ops<C> for Dir24_8Model {
    fn lookup(&mut self, ctx: &mut C, _ip: C::Val) -> C::Val {
        let long = ctx.fresh("dir24_8.long_match", Width::W1);
        let case = if ctx.fork(long) { C_LONG } else { C_SHORT };
        if case == C_LONG {
            ctx.tag("lpm:long");
        } else {
            ctx.tag("lpm:short");
        }
        ctx.tracer().stateful(StatefulCall {
            ds: self.ids.ds,
            method: M_LOOKUP,
            case,
        });
        ctx.fresh("dir24_8.port", Width::W16)
    }
}

/// Calibrate and register. Both cases are constants (no PCVs).
pub fn register(reg: &mut DsRegistry, name: &str) -> Dir24_8Ids {
    let provisional = Dir24_8Ids { ds: DsId(u32::MAX) };
    let measure = |table: &mut Dir24_8, ip: u32| -> [u64; 3] {
        let mut rec = RecordingTracer::new();
        {
            let mut ctx = ConcreteCtx::new(&mut rec);
            let ipv = ctx.lit(ip as u64, Width::W32);
            let _ = Dir24_8Ops::<_>::lookup(table, &mut ctx, ipv);
        }
        let (ic, ma) = bolt_trace::count_ic_ma(&rec.events);
        [ic, ma, bolt_hw::conservative_cycles(&rec.events)]
    };
    let mut aspace = AddressSpace::new();
    let mut table = Dir24_8::new(provisional, 16, 4, 0, &mut aspace);
    table.insert(0x0A000000, 8, 1);
    table.insert(0x0B000000, 24, 2); // longer than first_bits: forces a group
    let short = measure(&mut table, 0x0A010203);
    let long = measure(&mut table, 0x0B000000);
    let contract = DsContract {
        methods: vec![MethodContract {
            name: "lookup",
            cases: vec![
                CaseContract {
                    name: "matched prefix <= 24 bits",
                    perf: [
                        PerfExpr::constant(short[0]),
                        PerfExpr::constant(short[1]),
                        PerfExpr::constant(short[2]),
                    ],
                },
                CaseContract {
                    name: "matched prefix > 24 bits",
                    perf: [
                        PerfExpr::constant(long[0]),
                        PerfExpr::constant(long[1]),
                        PerfExpr::constant(long[2]),
                    ],
                },
            ],
        }],
    };
    let ds = reg.register(name, contract);
    Dir24_8Ids { ds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lpm_trie;
    use bolt_trace::{Metric, NullTracer};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (DsRegistry, Dir24_8Ids, Dir24_8) {
        let mut reg = DsRegistry::new();
        let ids = register(&mut reg, "dir24_8");
        let mut aspace = AddressSpace::new();
        let table = Dir24_8::new(ids, 16, 16, 0, &mut aspace);
        (reg, ids, table)
    }

    #[test]
    fn short_and_long_matches() {
        // Test geometry: 16-bit first level, so /24 routes take the long
        // (two-load) path the way /32 routes do on the real 24-bit table.
        let (_, _, mut table) = setup();
        table.insert(0x0A000000, 8, 1);
        table.insert(0x0A010100, 24, 2);
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let ip = ctx.lit(0x0A020304u64, Width::W32);
        let p = Dir24_8Ops::<_>::lookup(&mut table, &mut ctx, ip);
        assert_eq!(ctx.concrete_value(p), Some(1));
        assert!(!table.last_was_long);
        let ip = ctx.lit(0x0A010155u64, Width::W32);
        let p = Dir24_8Ops::<_>::lookup(&mut table, &mut ctx, ip);
        assert_eq!(ctx.concrete_value(p), Some(2));
        assert!(table.last_was_long);
        // Same first-level entry, different third byte: falls back to the
        // /8 route seeded into the group (still the long path).
        let ip = ctx.lit(0x0A010255u64, Width::W32);
        let p = Dir24_8Ops::<_>::lookup(&mut table, &mut ctx, ip);
        assert_eq!(ctx.concrete_value(p), Some(1));
        assert!(table.last_was_long);
    }

    #[test]
    fn agrees_with_trie_on_random_tables() {
        let mut rng = SmallRng::seed_from_u64(17);
        for round in 0..10 {
            let mut reg = DsRegistry::new();
            let ids = register(&mut reg, "d");
            let trie_ids = lpm_trie::register(&mut reg, "trie", "");
            let mut aspace = AddressSpace::new();
            let mut dir = Dir24_8::new(ids, 16, 64, 0, &mut aspace);
            let mut trie = lpm_trie::LpmTrie::new(trie_ids, 65536, 0, &mut aspace);
            for _ in 0..40 {
                // Prefix lengths that respect the 16+8 test geometry.
                let len = rng.gen_range(4..=24u8);
                let prefix = rng.gen::<u32>() & (!0u32 << (32 - len));
                let port = rng.gen_range(1..100u16);
                dir.insert(prefix, len, port);
                trie.insert(prefix, len, port);
            }
            for _ in 0..500 {
                let ip = rng.gen::<u32>();
                assert_eq!(
                    dir.raw_lookup(ip),
                    trie.raw_lookup(ip),
                    "round {round} ip {ip:#x}"
                );
            }
        }
    }

    #[test]
    fn long_case_costs_exactly_one_extra_load() {
        let (reg, ids, _) = setup();
        let short = reg.resolve(StatefulCall {
            ds: ids.ds,
            method: M_LOOKUP,
            case: C_SHORT,
        });
        let long = reg.resolve(StatefulCall {
            ds: ids.ds,
            method: M_LOOKUP,
            case: C_LONG,
        });
        let s_ma = short.expr(Metric::MemAccesses).as_const().unwrap();
        let l_ma = long.expr(Metric::MemAccesses).as_const().unwrap();
        assert_eq!(s_ma, 1);
        assert_eq!(l_ma, 2);
        assert!(
            long.expr(Metric::Instructions).as_const().unwrap()
                > short.expr(Metric::Instructions).as_const().unwrap()
        );
    }

    #[test]
    fn contract_bounds_measured_lookups() {
        let (reg, ids, mut table) = setup();
        table.insert(0xC0000000, 4, 1);
        table.insert(0xC0A80000, 16, 2);
        table.insert(0xC0A80100, 24, 3);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..300 {
            let ip = rng.gen::<u32>();
            let mut rec = RecordingTracer::new();
            {
                let mut ctx = ConcreteCtx::new(&mut rec);
                let ipv = ctx.lit(ip as u64, Width::W32);
                let _ = Dir24_8Ops::<_>::lookup(&mut table, &mut ctx, ipv);
            }
            let case = reg.resolve(StatefulCall {
                ds: ids.ds,
                method: M_LOOKUP,
                case: if table.last_was_long { C_LONG } else { C_SHORT },
            });
            let (ic, ma) = bolt_trace::count_ic_ma(&rec.events);
            let cyc = bolt_hw::conservative_cycles(&rec.events);
            let env = bolt_expr::PcvAssignment::new();
            assert!(case.expr(Metric::Instructions).eval(&env) >= ic);
            assert!(case.expr(Metric::MemAccesses).eval(&env) >= ma);
            assert!(case.expr(Metric::Cycles).eval(&env) >= cyc);
        }
    }

    #[test]
    fn model_forks_two_cases() {
        let mut reg = DsRegistry::new();
        let ids = register(&mut reg, "d");
        let result = bolt_see::Explorer::new().explore(|ctx| {
            let mut model = Dir24_8Model::new(ids);
            let pkt = ctx.packet(64);
            let ip = ctx.load(pkt, 30, 4);
            let _ = Dir24_8Ops::<_>::lookup(&mut model, ctx, ip);
        });
        assert_eq!(result.paths.len(), 2);
        assert_eq!(result.tagged("lpm:long").count(), 1);
        assert_eq!(result.tagged("lpm:short").count(), 1);
    }
}
