//! MAC learning table with a collision-attack defence (§5.2).
//!
//! The bridge's table is a [`FlowTable<1>`] keyed by the 48-bit source
//! MAC, plus the defence the paper analyses: the hash incorporates a
//! random seed, and if a `learn` probe ever traverses more than
//! `rehash_threshold` slots, the seed is renewed and the whole table
//! rebuilt. Rehashing is deliberately expensive — it produces the
//! performance cliff of Table 4's third row, and picking the threshold is
//! the operator use-case of Figure 2.
//!
//! The table's contract composes the flow table's calibrated method
//! contracts with the (constant) glue costs of the learn/lookup wrappers;
//! the `unknown` case coalesces `put`'s stored/full outcomes into the
//! worst (stored).

use bolt_expr::{PerfExpr, Width};
use bolt_see::NfCtx;
use bolt_trace::{AddressSpace, DsId, InstrClass, Metric, StatefulCall};

use crate::flow_table::{
    self, FlowTable, FlowTableIds, FlowTableOps, FlowTableParams, C_HIT, C_MISS, C_STORED,
    M_EXPIRE, M_GET, M_PEEK, M_PUT, M_REHASH,
};
use crate::registry::{CaseContract, DsContract, DsRegistry, MethodContract};

/// MacTable method indices.
pub const M_MT_EXPIRE: u16 = 0;
/// `learn` (source MAC processing).
pub const M_MT_LEARN: u16 = 1;
/// `lookup` (destination MAC query, no refresh).
pub const M_MT_LOOKUP: u16 = 2;

/// `learn` cases.
pub const C_KNOWN: u16 = 0;
/// Unknown source, learned without rehash.
pub const C_UNKNOWN: u16 = 1;
/// Unknown source, probe exceeded the threshold: rehash triggered.
pub const C_UNKNOWN_REHASH: u16 = 2;

/// What `learn` did (mirrors the contract cases).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LearnOutcome {
    /// Source already present; its age was refreshed.
    Known,
    /// Source learned.
    Unknown,
    /// Source learned and the table was rehashed.
    UnknownRehash,
}

impl LearnOutcome {
    /// The contract case index.
    pub fn case(self) -> u16 {
        match self {
            LearnOutcome::Known => C_KNOWN,
            LearnOutcome::Unknown => C_UNKNOWN,
            LearnOutcome::UnknownRehash => C_UNKNOWN_REHASH,
        }
    }
}

/// Ids handle for a registered MAC table (includes the inner store's ids,
/// whose PCVs — bare `e`, `c`, `t`, `o` — the composed contract reuses).
#[derive(Clone, Copy, Debug)]
pub struct MacTableIds {
    /// The MAC table instance.
    pub ds: DsId,
    /// The inner flow-table instance (calibration source).
    pub store: FlowTableIds,
}

/// Glue instruction counts of the wrapper methods (used identically by the
/// concrete implementation and the composed contract).
const GLUE_KNOWN: u32 = 3; // call + branch-on-hit + ret
const GLUE_UNKNOWN: u32 = 5; // + threshold compare + branch
const GLUE_REHASH: u32 = 8; // + new-seed generation (3 alu)
const GLUE_LOOKUP: u32 = 3;
const GLUE_EXPIRE: u32 = 2;

/// Common operations of the concrete MAC table and its model.
pub trait MacTableOps<C: NfCtx> {
    /// Expire stale MACs; returns how many were removed.
    fn expire(&mut self, ctx: &mut C, now: C::Val) -> C::Val;
    /// Process a source MAC: refresh if known, learn (and possibly
    /// rehash) if not.
    fn learn(&mut self, ctx: &mut C, mac: C::Val, port: C::Val, now: C::Val) -> LearnOutcome;
    /// Query a destination MAC (no refresh). `None` means flood.
    fn lookup(&mut self, ctx: &mut C, mac: C::Val) -> Option<C::Val>;
}

/// The concrete, instrumented MAC table.
#[derive(Debug)]
pub struct MacTable {
    #[allow(dead_code)] // kept: instances carry their registry identity
    ids: MacTableIds,
    inner: FlowTable<1>,
    /// Probe-length threshold that triggers the seed renewal.
    pub rehash_threshold: u64,
    reseed_state: u64,
    /// Worst `(t, c)` probe statistics across the inner operations of the
    /// most recent `learn`/`lookup` (the PCV binding for its contract).
    pub last_op_probe: (u64, u64),
}

impl MacTable {
    /// Build a concrete table.
    pub fn new(
        ids: MacTableIds,
        params: FlowTableParams,
        rehash_threshold: u64,
        aspace: &mut AddressSpace,
    ) -> Self {
        MacTable {
            ids,
            inner: FlowTable::new(ids.store, params, aspace),
            rehash_threshold,
            reseed_state: 0x8f1b_bcdc_cafe_f00d,
            last_op_probe: (0, 0),
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Current hash seed (changes on rehash).
    pub fn seed(&self) -> u64 {
        self.inner.seed()
    }

    /// The slot a MAC hashes to under the current seed (for adversarial
    /// workload construction).
    pub fn bucket_of(&self, mac: u64) -> usize {
        self.inner.bucket_of(&[mac])
    }

    /// Direct access to the inner store (pathological-state synthesis).
    pub fn store_mut(&mut self) -> &mut FlowTable<1> {
        &mut self.inner
    }

    /// Worst probe statistics across the most recent wrapper operation
    /// (a `learn` does an inner get and possibly an inner put; its
    /// contract's `t`/`c` bind to the worst of the two probes).
    pub fn last_probe(&self) -> (u64, u64) {
        self.last_op_probe
    }
}

impl<C: NfCtx> MacTableOps<C> for MacTable {
    fn expire(&mut self, ctx: &mut C, now: C::Val) -> C::Val {
        ctx.tracer().instr(InstrClass::Call, 1);
        let e = self.inner.expire(ctx, now);
        ctx.tracer().instr(InstrClass::Ret, 1);
        e
    }

    fn learn(&mut self, ctx: &mut C, mac: C::Val, port: C::Val, now: C::Val) -> LearnOutcome {
        ctx.tracer().instr(InstrClass::Call, 1);
        let hit = self.inner.get(ctx, &[mac], now).is_some();
        self.last_op_probe = self.inner.last_probe;
        ctx.tracer().instr(InstrClass::Branch, 1);
        let outcome = if hit {
            LearnOutcome::Known
        } else {
            let _stored = self.inner.put(ctx, &[mac], port, now);
            self.last_op_probe = (
                self.last_op_probe.0.max(self.inner.last_probe.0),
                self.last_op_probe.1.max(self.inner.last_probe.1),
            );
            let t = ctx.tracer();
            t.alu(1);
            t.instr(InstrClass::Branch, 1);
            if self.inner.last_probe.0 > self.rehash_threshold {
                // Renew the random seed (xorshift of internal state).
                ctx.tracer().alu(3);
                self.reseed_state ^= self.reseed_state << 13;
                self.reseed_state ^= self.reseed_state >> 7;
                self.reseed_state ^= self.reseed_state << 17;
                self.inner.rehash(ctx, self.reseed_state);
                LearnOutcome::UnknownRehash
            } else {
                LearnOutcome::Unknown
            }
        };
        ctx.tracer().instr(InstrClass::Ret, 1);
        outcome
    }

    fn lookup(&mut self, ctx: &mut C, mac: C::Val) -> Option<C::Val> {
        ctx.tracer().instr(InstrClass::Call, 1);
        let r = self.inner.peek(ctx, &[mac]);
        self.last_op_probe = self.inner.last_probe;
        ctx.tracer().instr(InstrClass::Branch, 1);
        ctx.tracer().instr(InstrClass::Ret, 1);
        r
    }
}

/// Symbolic model of the MAC table.
#[derive(Clone, Copy, Debug)]
pub struct MacTableModel {
    ids: MacTableIds,
    capacity: u64,
}

impl MacTableModel {
    /// Model for a registered instance.
    pub fn new(ids: MacTableIds, params: FlowTableParams) -> Self {
        MacTableModel {
            ids,
            capacity: params.capacity as u64,
        }
    }

    fn call(&self, ctx: &mut impl NfCtx, method: u16, case: u16) {
        ctx.tracer().stateful(StatefulCall {
            ds: self.ids.ds,
            method,
            case,
        });
    }
}

impl<C: NfCtx> MacTableOps<C> for MacTableModel {
    fn expire(&mut self, ctx: &mut C, _now: C::Val) -> C::Val {
        self.call(ctx, M_MT_EXPIRE, 0);
        let e = ctx.fresh("mac_table.expired", Width::W64);
        let cap = ctx.lit(self.capacity, Width::W64);
        let bounded = ctx.ule_free(e, cap);
        ctx.assume(bounded);
        e
    }

    fn learn(&mut self, ctx: &mut C, _mac: C::Val, _port: C::Val, _now: C::Val) -> LearnOutcome {
        let known = ctx.fresh("mac_table.learn.known", Width::W1);
        if ctx.fork(known) {
            self.call(ctx, M_MT_LEARN, C_KNOWN);
            return LearnOutcome::Known;
        }
        let rehash = ctx.fresh("mac_table.learn.rehash", Width::W1);
        if ctx.fork(rehash) {
            self.call(ctx, M_MT_LEARN, C_UNKNOWN_REHASH);
            LearnOutcome::UnknownRehash
        } else {
            self.call(ctx, M_MT_LEARN, C_UNKNOWN);
            LearnOutcome::Unknown
        }
    }

    fn lookup(&mut self, ctx: &mut C, _mac: C::Val) -> Option<C::Val> {
        let hit = ctx.fresh("mac_table.lookup.hit", Width::W1);
        if ctx.fork(hit) {
            self.call(ctx, M_MT_LOOKUP, C_HIT);
            Some(ctx.fresh("mac_table.lookup.port", Width::W64))
        } else {
            self.call(ctx, M_MT_LOOKUP, C_MISS);
            None
        }
    }
}

/// Add glue-instruction cost to an expression triple.
fn with_glue(base: [PerfExpr; 3], glue_instr: u32) -> [PerfExpr; 3] {
    // Glue is branch/call/ret/alu work with no memory operands; charge the
    // worst per-instruction latency for cycles (call/ret at 4).
    let cycles_per = 4.0_f64;
    let [mut ic, ma, mut cy] = base;
    ic.add_const(glue_instr as u64);
    cy.add_const((glue_instr as f64 * cycles_per).ceil() as u64);
    [ic, ma, cy]
}

fn sum3(a: &[PerfExpr; 3], b: &[PerfExpr; 3]) -> [PerfExpr; 3] {
    [a[0].add(&b[0]), a[1].add(&b[1]), a[2].add(&b[2])]
}

fn case_perf(reg: &DsRegistry, ds: DsId, method: u16, case: u16) -> [PerfExpr; 3] {
    let c = reg.resolve(StatefulCall { ds, method, case });
    [
        c.expr(Metric::Instructions).clone(),
        c.expr(Metric::MemAccesses).clone(),
        c.expr(Metric::Cycles).clone(),
    ]
}

/// Register a MAC table: registers the inner store (with *bare* PCV names,
/// as in Table 4), composes the wrapper contract, and registers it.
pub fn register(
    reg: &mut DsRegistry,
    name: &str,
    params: FlowTableParams,
    _rehash_threshold: u64,
) -> MacTableIds {
    let store = flow_table::register::<1>(reg, &format!("{name}.store"), "", params);
    let get_hit = case_perf(reg, store.ds, M_GET, C_HIT);
    let get_miss = case_perf(reg, store.ds, M_GET, C_MISS);
    let peek_hit = case_perf(reg, store.ds, M_PEEK, C_HIT);
    let peek_miss = case_perf(reg, store.ds, M_PEEK, C_MISS);
    let put_stored = case_perf(reg, store.ds, M_PUT, C_STORED);
    let expire = case_perf(reg, store.ds, M_EXPIRE, 0);
    let rehash = case_perf(reg, store.ds, M_REHASH, 0);

    let known = with_glue(get_hit, GLUE_KNOWN);
    let unknown = with_glue(sum3(&get_miss, &put_stored), GLUE_UNKNOWN);
    let unknown_rehash = with_glue(sum3(&sum3(&get_miss, &put_stored), &rehash), GLUE_REHASH);
    let contract = DsContract {
        methods: vec![
            MethodContract {
                name: "expire",
                cases: vec![CaseContract {
                    name: "expired",
                    perf: with_glue(expire, GLUE_EXPIRE),
                }],
            },
            MethodContract {
                name: "learn",
                cases: vec![
                    CaseContract {
                        name: "known source MAC",
                        perf: known,
                    },
                    CaseContract {
                        name: "unknown source MAC; no rehashing",
                        perf: unknown,
                    },
                    CaseContract {
                        name: "unknown source MAC; rehashing",
                        perf: unknown_rehash,
                    },
                ],
            },
            MethodContract {
                name: "lookup",
                cases: vec![
                    CaseContract {
                        name: "known destination",
                        perf: with_glue(peek_hit, GLUE_LOOKUP),
                    },
                    CaseContract {
                        name: "unknown destination",
                        perf: with_glue(peek_miss, GLUE_LOOKUP),
                    },
                ],
            },
        ],
    };
    let ds = reg.register(name, contract);
    MacTableIds { ds, store }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_expr::PcvAssignment;
    use bolt_see::concrete::CVal;
    use bolt_see::ConcreteCtx;
    use bolt_trace::{NullTracer, RecordingTracer};

    fn setup(capacity: usize, threshold: u64) -> (DsRegistry, MacTableIds, MacTable) {
        let mut reg = DsRegistry::new();
        let params = FlowTableParams {
            capacity,
            ttl_ns: 1000,
        };
        let ids = register(&mut reg, "mac_table", params, threshold);
        let mut aspace = AddressSpace::new();
        let table = MacTable::new(ids, params, threshold, &mut aspace);
        (reg, ids, table)
    }

    fn w48(ctx: &mut ConcreteCtx<'_>, v: u64) -> CVal {
        ctx.lit(v, Width::W48)
    }

    #[test]
    fn learn_then_lookup() {
        let (_, _, mut table) = setup(256, 64);
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let mac = w48(&mut ctx, 0x0A0B0C0D0E0F);
        let port = ctx.lit(3, Width::W64);
        let now = ctx.lit(0, Width::W64);
        assert!(MacTableOps::<_>::lookup(&mut table, &mut ctx, mac).is_none());
        assert_eq!(
            MacTableOps::<_>::learn(&mut table, &mut ctx, mac, port, now),
            LearnOutcome::Unknown
        );
        assert_eq!(
            MacTableOps::<_>::learn(&mut table, &mut ctx, mac, port, now),
            LearnOutcome::Known
        );
        let got = MacTableOps::<_>::lookup(&mut table, &mut ctx, mac).unwrap();
        assert_eq!(ctx.concrete_value(got), Some(3));
    }

    #[test]
    fn expire_clears_old_macs() {
        let (_, _, mut table) = setup(256, 64);
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let mac = w48(&mut ctx, 0x111111111111);
        let port = ctx.lit(1, Width::W64);
        let t0 = ctx.lit(0, Width::W64);
        MacTableOps::<_>::learn(&mut table, &mut ctx, mac, port, t0);
        let t2k = ctx.lit(2000, Width::W64);
        let e = MacTableOps::<_>::expire(&mut table, &mut ctx, t2k);
        assert_eq!(ctx.concrete_value(e), Some(1));
        assert!(MacTableOps::<_>::lookup(&mut table, &mut ctx, mac).is_none());
    }

    #[test]
    fn long_probe_triggers_rehash() {
        let (_, _, mut table) = setup(256, 4);
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let now = ctx.lit(0, Width::W64);
        // Build an adversarial probe run: MACs whose slot collides.
        let target_slot = 7usize;
        let mut macs = Vec::new();
        let mut nonce = 0u64;
        while macs.len() < 8 {
            nonce += 1;
            if table.bucket_of(nonce) == target_slot {
                macs.push(nonce);
            }
        }
        let old_seed = table.seed();
        let mut saw_rehash = false;
        for &m in &macs {
            let mac = w48(&mut ctx, m);
            let port = ctx.lit(1, Width::W64);
            if MacTableOps::<_>::learn(&mut table, &mut ctx, mac, port, now)
                == LearnOutcome::UnknownRehash
            {
                saw_rehash = true;
                break;
            }
        }
        assert!(saw_rehash, "colliding inserts must eventually rehash");
        assert_ne!(table.seed(), old_seed);
        // All previously learned MACs survive the rehash.
        for &m in &macs {
            let mac = w48(&mut ctx, m);
            if table.store_mut().raw_get(&[m]).is_some() {
                assert!(MacTableOps::<_>::lookup(&mut table, &mut ctx, mac).is_some());
            }
        }
    }

    #[test]
    fn contract_bounds_each_learn_case() {
        let (reg, ids, mut table) = setup(256, 6);
        let mut now = 0u64;
        for i in 0..300u64 {
            now += 1;
            let mut rec = RecordingTracer::new();
            let (outcome, probe) = {
                let mut ctx = ConcreteCtx::new(&mut rec);
                let mac = w48(&mut ctx, (i % 100) * 7 + 1);
                let port = ctx.lit(1, Width::W64);
                let nowv = ctx.lit(now, Width::W64);
                let o = MacTableOps::<_>::learn(&mut table, &mut ctx, mac, port, nowv);
                (o, table.last_probe())
            };
            let (ic, ma) = bolt_trace::count_ic_ma(&rec.events);
            let cyc = bolt_hw::conservative_cycles(&rec.events);
            let mut env = PcvAssignment::new();
            env.set(ids.store.t, probe.0)
                .set(ids.store.c, probe.1)
                .set(ids.store.o, table.len() as u64);
            let case = reg.resolve(StatefulCall {
                ds: ids.ds,
                method: M_MT_LEARN,
                case: outcome.case(),
            });
            assert!(
                case.expr(Metric::Instructions).eval(&env) >= ic,
                "learn IC bound violated at step {i} ({outcome:?})"
            );
            assert!(case.expr(Metric::MemAccesses).eval(&env) >= ma);
            assert!(
                case.expr(Metric::Cycles).eval(&env) >= cyc,
                "learn cycle bound violated at step {i} ({outcome:?})"
            );
        }
    }

    #[test]
    fn rehash_contract_has_occupancy_term() {
        let (reg, ids, _) = setup(256, 6);
        let case = reg.resolve(StatefulCall {
            ds: ids.ds,
            method: M_MT_LEARN,
            case: C_UNKNOWN_REHASH,
        });
        let expr = case.expr(Metric::Instructions);
        assert!(
            expr.coeff(&bolt_expr::Monomial::var(ids.store.o)) > 0,
            "rehash case must scale with occupancy"
        );
        // The rehash constant dwarfs the no-rehash case (Table 4's cliff).
        let no_rehash = reg.resolve(StatefulCall {
            ds: ids.ds,
            method: M_MT_LEARN,
            case: C_UNKNOWN,
        });
        assert!(
            expr.constant_term() > 10 * no_rehash.expr(Metric::Instructions).constant_term(),
            "rehashing must be a performance cliff"
        );
    }

    #[test]
    fn model_learn_has_three_cases() {
        let mut reg = DsRegistry::new();
        let params = FlowTableParams {
            capacity: 64,
            ttl_ns: 100,
        };
        let ids = register(&mut reg, "mt", params, 6);
        let result = bolt_see::Explorer::new().explore(|ctx| {
            let mut model = MacTableModel::new(ids, params);
            let pkt = ctx.packet(64);
            let mac = ctx.load(pkt, 6, 6);
            let port = ctx.lit(0, Width::W64);
            let now = ctx.lit(0, Width::W64);
            match MacTableOps::<_>::learn(&mut model, ctx, mac, port, now) {
                LearnOutcome::Known => ctx.tag("known"),
                LearnOutcome::Unknown => ctx.tag("unknown"),
                LearnOutcome::UnknownRehash => ctx.tag("rehash"),
            }
        });
        assert_eq!(result.paths.len(), 3);
        assert_eq!(result.tagged("known").count(), 1);
        assert_eq!(result.tagged("unknown").count(), 1);
        assert_eq!(result.tagged("rehash").count(), 1);
    }
}
