//! Binary-trie longest-prefix-match table — the paper's running example.
//!
//! Algorithm 1 of the paper: the forwarding table is a bit trie; lookup
//! walks one node per matched prefix bit and stops when the next child is
//! absent. Its contract is Table 2: cost linear in the matched prefix
//! length `l`, the structure's only PCV. The coalescing described in §3.2
//! is reproduced exactly: the per-level cost depends on whether the bit is
//! 0 or 1 (different branch shapes), and the contract charges the worse of
//! the two.

use bolt_expr::{PcvId, PerfExpr, Width};
use bolt_see::{ConcreteCtx, NfCtx};
use bolt_trace::{AddressSpace, DsId, InstrClass, MemRegion, RecordingTracer, StatefulCall};

use crate::registry::{CaseContract, DsContract, DsRegistry, MethodContract};

/// Node stride: children pointers + port, padded to 16 bytes.
const NODE: u64 = 16;

/// The single method.
pub const M_LOOKUP: u16 = 0;

/// Ids handle for a registered trie.
#[derive(Clone, Copy, Debug)]
pub struct LpmTrieIds {
    /// Registry instance id.
    pub ds: DsId,
    /// PCV `l` — matched prefix length.
    pub l: PcvId,
}

#[derive(Clone, Copy, Debug)]
struct Node {
    child: [i32; 2],
    port: i32,
}

/// Operations shared by the concrete trie and its model.
pub trait LpmTrieOps<C: NfCtx> {
    /// Longest-prefix-match lookup; returns the port of the deepest node
    /// reached (the default route lives at the root).
    fn lookup(&mut self, ctx: &mut C, ip: C::Val) -> C::Val;
}

/// The concrete, instrumented trie.
#[derive(Debug, Clone)]
pub struct LpmTrie {
    ids: LpmTrieIds,
    nodes: Vec<Node>,
    r_nodes: MemRegion,
    max_nodes: usize,
    /// Depth reached by the most recent lookup (the PCV `l`).
    pub last_depth: u64,
}

impl LpmTrie {
    /// Build an empty trie with a default route on port `default_port`.
    pub fn new(
        ids: LpmTrieIds,
        max_nodes: usize,
        default_port: u16,
        aspace: &mut AddressSpace,
    ) -> Self {
        LpmTrie {
            ids,
            nodes: vec![Node {
                child: [-1, -1],
                port: default_port as i32,
            }],
            r_nodes: aspace.alloc_table(max_nodes as u64 * NODE),
            max_nodes,
            last_depth: 0,
        }
    }

    /// Number of trie nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Insert a route (control plane; uninstrumented).
    pub fn insert(&mut self, prefix: u32, len: u8, port: u16) {
        assert!(len <= 32);
        let mut node = 0usize;
        for i in 0..len {
            let bit = ((prefix >> (31 - i)) & 1) as usize;
            let next = self.nodes[node].child[bit];
            node = if next >= 0 {
                next as usize
            } else {
                assert!(self.nodes.len() < self.max_nodes, "trie capacity exceeded");
                let idx = self.nodes.len();
                self.nodes.push(Node {
                    child: [-1, -1],
                    port: -1,
                });
                self.nodes[node].child[bit] = idx as i32;
                idx
            };
        }
        self.nodes[node].port = port as i32;
    }

    /// Uninstrumented oracle lookup (longest prefix with a port set; falls
    /// back to the deepest ancestor that has one).
    pub fn raw_lookup(&self, ip: u32) -> u16 {
        let mut node = 0usize;
        let mut best = self.nodes[0].port;
        for i in 0..32 {
            let bit = ((ip >> (31 - i)) & 1) as usize;
            let next = self.nodes[node].child[bit];
            if next < 0 {
                break;
            }
            node = next as usize;
            if self.nodes[node].port >= 0 {
                best = self.nodes[node].port;
            }
        }
        best.max(0) as u16
    }
}

impl<C: NfCtx> LpmTrieOps<C> for LpmTrie {
    fn lookup(&mut self, ctx: &mut C, ip: C::Val) -> C::Val {
        let ipv = ctx
            .concrete_value(ip)
            .expect("concrete trie needs a concrete address") as u32;
        let t = ctx.tracer();
        t.instr(InstrClass::Call, 1);
        let mut node = 0usize;
        let mut best = self.nodes[0].port;
        let mut depth = 0u64;
        for i in 0..32 {
            let bit = ((ipv >> (31 - i)) & 1) as usize;
            // Bit extraction: shift + mask. A 0-bit needs one fewer ALU op
            // (the compiler tests the flag directly); the contract
            // coalesces to the 1-bit cost (§3.2's example).
            t.alu(if bit == 1 { 2 } else { 1 });
            // Child pointer load (pointer chase) + null test.
            t.mem_read_dep(self.r_nodes.addr(node as u64 * NODE + 4 * bit as u64), 4);
            t.instr(InstrClass::Branch, 1);
            let next = self.nodes[node].child[bit];
            if next < 0 {
                break;
            }
            node = next as usize;
            // Port refresh along the path: load + test + conditional move.
            t.mem_read_dep(self.r_nodes.addr(node as u64 * NODE + 8), 4);
            t.alu(2);
            if self.nodes[node].port >= 0 {
                best = self.nodes[node].port;
            }
            depth += 1;
        }
        t.pcv(self.ids.l, depth);
        t.instr(InstrClass::Ret, 1);
        self.last_depth = depth;
        ctx.lit(best.max(0) as u64, Width::W16)
    }
}

/// Symbolic model: returns a fresh port; the matched length is opaque.
#[derive(Clone, Copy, Debug)]
pub struct LpmTrieModel {
    ids: LpmTrieIds,
}

impl LpmTrieModel {
    /// Model for a registered instance.
    pub fn new(ids: LpmTrieIds) -> Self {
        LpmTrieModel { ids }
    }
}

impl<C: NfCtx> LpmTrieOps<C> for LpmTrieModel {
    fn lookup(&mut self, ctx: &mut C, _ip: C::Val) -> C::Val {
        ctx.tracer().stateful(StatefulCall {
            ds: self.ids.ds,
            method: M_LOOKUP,
            case: 0,
        });
        ctx.fresh("lpm.port", Width::W16)
    }
}

/// Calibrate and register a trie instance. The contract has Table 2's
/// shape: `slope·l + fixed` for each metric.
pub fn register(reg: &mut DsRegistry, name: &str, pcv_prefix: &str) -> LpmTrieIds {
    let l = reg.pcv(pcv_prefix, "l");
    let provisional = LpmTrieIds {
        ds: DsId(u32::MAX),
        l,
    };
    // Calibration: routes at depth 0 vs depth d, worst bit pattern (all
    // ones, so every level pays the 2-ALU bit extraction).
    let d = 16u64;
    let measure = |trie: &mut LpmTrie, ip: u32| -> [u64; 3] {
        let mut rec = RecordingTracer::new();
        {
            let mut ctx = ConcreteCtx::new(&mut rec);
            let ipv = ctx.lit(ip as u64, Width::W32);
            let _ = LpmTrieOps::<_>::lookup(trie, &mut ctx, ipv);
        }
        let (ic, ma) = bolt_trace::count_ic_ma(&rec.events);
        [ic, ma, bolt_hw::conservative_cycles(&rec.events)]
    };
    let mut aspace = AddressSpace::new();
    let mut trie = LpmTrie::new(provisional, 1024, 0, &mut aspace);
    // Depth-0 lookup: first bit of 0xFFFF… has no child.
    let base = measure(&mut trie, 0xFFFF_FFFF);
    // Insert an all-ones prefix of length d; lookup matches d levels.
    trie.insert(0xFFFF_FFFF, d as u8, 7);
    let deep = measure(&mut trie, 0xFFFF_FFFF);
    let slope = |m: usize| (deep[m] - base[m]) / d;
    let fixed = |m: usize| base[m];
    let build = |m: usize| {
        let mut e = PerfExpr::constant(fixed(m));
        e.add_assign(&PerfExpr::var(l, slope(m)));
        e
    };
    let contract = DsContract {
        methods: vec![MethodContract {
            name: "lookup",
            cases: vec![CaseContract {
                name: "unconstrained",
                perf: [build(0), build(1), build(2)],
            }],
        }],
    };
    let ds = reg.register(name, contract);
    LpmTrieIds { ds, l }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_expr::PcvAssignment;
    use bolt_trace::{Metric, NullTracer};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn setup() -> (DsRegistry, LpmTrieIds, LpmTrie) {
        let mut reg = DsRegistry::new();
        let ids = register(&mut reg, "lpm", "");
        let mut aspace = AddressSpace::new();
        let trie = LpmTrie::new(ids, 4096, 0, &mut aspace);
        (reg, ids, trie)
    }

    #[test]
    fn longest_prefix_wins() {
        let (_, _, mut trie) = setup();
        trie.insert(0x0A000000, 8, 1); // 10.0.0.0/8 -> 1
        trie.insert(0x0A010000, 16, 2); // 10.1.0.0/16 -> 2
        trie.insert(0x0A010100, 24, 3); // 10.1.1.0/24 -> 3
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let cases = [
            (0x0A020304u32, 1u64), // 10.2.x matches /8
            (0x0A010203, 2),       // 10.1.2.x matches /16
            (0x0A0101FF, 3),       // 10.1.1.x matches /24
            (0x0B000001, 0),       // default
        ];
        for (ip, want) in cases {
            let ipv = ctx.lit(ip as u64, Width::W32);
            let got = LpmTrieOps::<_>::lookup(&mut trie, &mut ctx, ipv);
            assert_eq!(ctx.concrete_value(got), Some(want), "ip {ip:#x}");
        }
    }

    #[test]
    fn matches_oracle_on_random_tables() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20 {
            let (_, _, mut trie) = setup();
            for _ in 0..50 {
                let len = rng.gen_range(1..=24u8);
                let prefix = rng.gen::<u32>() & (!0u32 << (32 - len));
                let port = rng.gen_range(1..64u16);
                trie.insert(prefix, len, port);
            }
            let mut t = NullTracer;
            let mut ctx = ConcreteCtx::new(&mut t);
            for _ in 0..200 {
                let ip = rng.gen::<u32>();
                let ipv = ctx.lit(ip as u64, Width::W32);
                let got = LpmTrieOps::<_>::lookup(&mut trie, &mut ctx, ipv);
                assert_eq!(
                    ctx.concrete_value(got),
                    Some(trie.raw_lookup(ip) as u64),
                    "ip {ip:#x}"
                );
            }
        }
    }

    #[test]
    fn contract_is_linear_in_l_and_bounds_measured() {
        let (reg, ids, mut trie) = setup();
        trie.insert(0xC0A80000, 16, 5);
        trie.insert(0xC0A80100, 24, 6);
        let case = reg.resolve(StatefulCall {
            ds: ids.ds,
            method: M_LOOKUP,
            case: 0,
        });
        assert_eq!(case.expr(Metric::Instructions).degree(), 1);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            let ip = if rng.gen_bool(0.5) {
                0xC0A80000 | rng.gen_range(0..0x10000)
            } else {
                rng.gen::<u32>()
            };
            let mut rec = RecordingTracer::new();
            {
                let mut ctx = ConcreteCtx::new(&mut rec);
                let ipv = ctx.lit(ip as u64, Width::W32);
                let _ = LpmTrieOps::<_>::lookup(&mut trie, &mut ctx, ipv);
            }
            let (ic, ma) = bolt_trace::count_ic_ma(&rec.events);
            let cyc = bolt_hw::conservative_cycles(&rec.events);
            let mut env = PcvAssignment::new();
            env.set(ids.l, trie.last_depth);
            assert!(case.expr(Metric::Instructions).eval(&env) >= ic);
            assert!(case.expr(Metric::MemAccesses).eval(&env) >= ma);
            assert!(case.expr(Metric::Cycles).eval(&env) >= cyc);
        }
    }

    #[test]
    fn depth_pcv_tracks_matched_length() {
        let (_, _, mut trie) = setup();
        trie.insert(0xFF000000, 8, 9);
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let ipv = ctx.lit(0xFF123456u64, Width::W32);
        let _ = LpmTrieOps::<_>::lookup(&mut trie, &mut ctx, ipv);
        assert_eq!(trie.last_depth, 8);
        let ipv = ctx.lit(0x00000000u64, Width::W32);
        let _ = LpmTrieOps::<_>::lookup(&mut trie, &mut ctx, ipv);
        assert_eq!(trie.last_depth, 0);
    }

    #[test]
    fn model_emits_single_case() {
        let mut reg = DsRegistry::new();
        let ids = register(&mut reg, "lpm", "");
        let result = bolt_see::Explorer::new().explore(|ctx| {
            let mut model = LpmTrieModel::new(ids);
            let pkt = ctx.packet(64);
            let ip = ctx.load(pkt, 30, 4);
            let _port = LpmTrieOps::<_>::lookup(&mut model, ctx, ip);
        });
        assert_eq!(result.paths.len(), 1);
        let calls: Vec<_> = result.paths[0]
            .events
            .iter()
            .filter(|e| matches!(e, bolt_trace::TraceEvent::Stateful(_)))
            .collect();
        assert_eq!(calls.len(), 1);
    }
}
