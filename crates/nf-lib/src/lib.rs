//! Pre-analysed stateful data-structure library for network functions.
//!
//! BOLT adopts Vigor's development model (§3.1–§3.2): experts write a
//! library of common NF data structures once, together with (a) a
//! *symbolic model* of each method for the analysis build and (b) a
//! manually derived *performance contract* for each method. NF developers
//! write stateless code against the library, and the contract generator
//! combines the stateless trace with the library contracts.
//!
//! Every structure in this crate therefore ships in three parts:
//!
//! 1. a **concrete implementation**, instrumented at x86-instruction
//!    granularity (every logical step reports its cost and simulated
//!    memory addresses through the ambient tracer);
//! 2. a **symbolic model** implementing the same operations trait: it
//!    returns fresh symbols, forks the path per contract case, and records
//!    a [`bolt_trace::StatefulCall`] event instead of executing;
//! 3. a **manual performance contract** ([`registry::MethodContract`])
//!    expressing each case's cost as a polynomial over the structure's
//!    PCVs. Contract and implementation are built from the *same* cost
//!    constants; the contract coalesces data-dependent branches into
//!    their worst case, which is exactly the paper's source of the ≤7%
//!    conservative gap (§3.2, §6).
//!
//! Inventory (everything the paper's four NFs plus §5's use cases need):
//!
//! | module | structure | used by |
//! |---|---|---|
//! | [`flow_table`] | chained hash map with double-chain expiry | NAT, LB, bridge |
//! | [`mac_table`]  | MAC learning table with rehash defence | bridge (§5.2) |
//! | [`lpm_trie`]   | binary trie LPM (§2 running example) | example router |
//! | [`lpm_dir24_8`]| DPDK-style two-tier LPM table | LPM router |
//! | [`maglev`]     | Maglev consistent-hash ring + backend pool | load balancer |
//! | [`port_alloc`] | port allocators A (linked list) and B (scan) | NAT (§5.3) |
//! | [`clock`]      | timestamp source with configurable granularity | NAT bug (§5.3) |

pub mod clock;
pub mod flow_table;
pub mod lpm_dir24_8;
pub mod lpm_trie;
pub mod mac_table;
pub mod maglev;
pub mod port_alloc;
pub mod registry;

pub use registry::{CaseContract, DsContract, DsRegistry, MethodContract};
