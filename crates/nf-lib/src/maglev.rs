//! Maglev consistent-hash ring and backend pool.
//!
//! The paper's load balancer is "Maglev-like" (the paper's ref. 17):
//! connections are
//! spread over backends via Maglev's permutation-filled lookup table, and
//! per-connection affinity is kept in a flow table. This module provides
//! the two stateful pieces the LB needs beyond the flow table:
//!
//! * [`MaglevRing`] — the lookup table, built with the published Maglev
//!   population algorithm (offset/skip permutations per backend until all
//!   `M` slots fill). Lookup is one modulo plus one table load.
//! * [`BackendPool`] — backend liveness tracked by heartbeat timestamps.
//!   `heartbeat` refreshes a backend; `is_alive` checks the timestamp
//!   against the heartbeat TTL and forks alive/dead cases in the model
//!   (classes LB3 vs LB4 in §5.1).

use bolt_expr::{PerfExpr, Width};
use bolt_see::{ConcreteCtx, NfCtx};
use bolt_trace::{AddressSpace, DsId, InstrClass, MemRegion, RecordingTracer, StatefulCall};

use crate::registry::{CaseContract, DsContract, DsRegistry, MethodContract};

/// Ring method index.
pub const M_RING_LOOKUP: u16 = 0;
/// Pool method indices.
pub const M_HEARTBEAT: u16 = 0;
/// Liveness check.
pub const M_IS_ALIVE: u16 = 1;
/// `is_alive` cases.
pub const C_ALIVE: u16 = 0;
/// Dead backend.
pub const C_DEAD: u16 = 1;

/// Ids handle for a registered ring.
#[derive(Clone, Copy, Debug)]
pub struct MaglevRingIds {
    /// Registry instance id.
    pub ds: DsId,
}

/// Ids handle for a registered backend pool.
#[derive(Clone, Copy, Debug)]
pub struct BackendPoolIds {
    /// Registry instance id.
    pub ds: DsId,
}

/// Operations of the ring.
pub trait MaglevRingOps<C: NfCtx> {
    /// Map a flow hash to a backend id.
    fn lookup(&mut self, ctx: &mut C, hash: C::Val) -> C::Val;
}

/// Operations of the backend pool.
pub trait BackendPoolOps<C: NfCtx> {
    /// Record a heartbeat from `backend`.
    fn heartbeat(&mut self, ctx: &mut C, backend: C::Val, now: C::Val);
    /// Whether `backend` heartbeated within the TTL.
    fn is_alive(&mut self, ctx: &mut C, backend: C::Val, now: C::Val) -> bool;
}

/// The concrete, instrumented Maglev table.
#[derive(Debug, Clone)]
pub struct MaglevRing {
    #[allow(dead_code)] // kept: instances carry their registry identity
    ids: MaglevRingIds,
    table: Vec<u16>,
    m: u64,
    r_table: MemRegion,
}

impl MaglevRing {
    /// Build the ring for `n_backends` over `m` slots (`m` should be a
    /// prime ≥ 100·n for good balance; Maglev uses 65537).
    pub fn new(ids: MaglevRingIds, n_backends: u16, m: u64, aspace: &mut AddressSpace) -> Self {
        assert!(n_backends > 0);
        assert!(m as usize > n_backends as usize);
        let table = Self::populate(n_backends, m);
        MaglevRing {
            ids,
            table,
            m,
            r_table: aspace.alloc_table(m * 2),
        }
    }

    fn h(x: u64, salt: u64) -> u64 {
        let mut v = x.wrapping_add(salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        v ^= v >> 31;
        v = v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        v ^ (v >> 27)
    }

    /// The published population algorithm: each backend has a permutation
    /// `(offset + j·skip) mod m`; backends take turns claiming their next
    /// unclaimed slot until the table is full.
    fn populate(n: u16, m: u64) -> Vec<u16> {
        let offsets: Vec<u64> = (0..n).map(|b| Self::h(b as u64, 0xA5) % m).collect();
        let skips: Vec<u64> = (0..n)
            .map(|b| Self::h(b as u64, 0x5A) % (m - 1) + 1)
            .collect();
        let mut next = vec![0u64; n as usize];
        let mut table = vec![u16::MAX; m as usize];
        let mut filled = 0u64;
        while filled < m {
            for b in 0..n as usize {
                loop {
                    let slot = ((offsets[b] + next[b] * skips[b]) % m) as usize;
                    next[b] += 1;
                    if table[slot] == u16::MAX {
                        table[slot] = b as u16;
                        filled += 1;
                        break;
                    }
                }
                if filled == m {
                    break;
                }
            }
        }
        table
    }

    /// Ring size.
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Uninstrumented lookup (oracle / distribution tests).
    pub fn raw_lookup(&self, hash: u64) -> u16 {
        self.table[(hash % self.m) as usize]
    }

    /// Per-backend slot counts (for balance tests).
    pub fn distribution(&self, n_backends: u16) -> Vec<u64> {
        let mut counts = vec![0u64; n_backends as usize];
        for &b in &self.table {
            counts[b as usize] += 1;
        }
        counts
    }
}

impl<C: NfCtx> MaglevRingOps<C> for MaglevRing {
    fn lookup(&mut self, ctx: &mut C, hash: C::Val) -> C::Val {
        let h = ctx.concrete_value(hash).expect("concrete hash");
        let t = ctx.tracer();
        t.instr(InstrClass::Call, 1);
        t.instr(InstrClass::Div, 1); // hash % m
        let slot = (h % self.m) as usize;
        t.mem_read(self.r_table.addr(slot as u64 * 2), 2);
        t.alu(1);
        t.instr(InstrClass::Ret, 1);
        ctx.lit(self.table[slot] as u64, Width::W16)
    }
}

/// Symbolic model of the ring.
#[derive(Clone, Copy, Debug)]
pub struct MaglevRingModel {
    ids: MaglevRingIds,
    n_backends: u64,
}

impl MaglevRingModel {
    /// Model for a registered instance.
    pub fn new(ids: MaglevRingIds, n_backends: u16) -> Self {
        MaglevRingModel {
            ids,
            n_backends: n_backends as u64,
        }
    }
}

impl<C: NfCtx> MaglevRingOps<C> for MaglevRingModel {
    fn lookup(&mut self, ctx: &mut C, _hash: C::Val) -> C::Val {
        ctx.tracer().stateful(StatefulCall {
            ds: self.ids.ds,
            method: M_RING_LOOKUP,
            case: 0,
        });
        let b = ctx.fresh("ring.backend", Width::W16);
        let n = ctx.lit(self.n_backends, Width::W16);
        let lt = ctx.ule_free(b, n); // b < n would need strict; b ≤ n is a sound relaxation
        ctx.assume(lt);
        b
    }
}

/// The concrete backend pool.
#[derive(Debug, Clone)]
pub struct BackendPool {
    #[allow(dead_code)] // kept: instances carry their registry identity
    ids: BackendPoolIds,
    last_hb: Vec<u64>,
    hb_ttl_ns: u64,
    r_hb: MemRegion,
}

impl BackendPool {
    /// Pool of `n` backends; a backend is alive if it heartbeated within
    /// `hb_ttl_ns`.
    pub fn new(ids: BackendPoolIds, n: u16, hb_ttl_ns: u64, aspace: &mut AddressSpace) -> Self {
        BackendPool {
            ids,
            last_hb: vec![0; n as usize],
            hb_ttl_ns,
            r_hb: aspace.alloc_table(n as u64 * 8),
        }
    }

    /// Number of backends.
    pub fn n(&self) -> usize {
        self.last_hb.len()
    }

    /// Uninstrumented liveness check.
    pub fn raw_is_alive(&self, backend: u16, now: u64) -> bool {
        now.saturating_sub(self.last_hb[backend as usize]) < self.hb_ttl_ns
    }
}

impl<C: NfCtx> BackendPoolOps<C> for BackendPool {
    fn heartbeat(&mut self, ctx: &mut C, backend: C::Val, now: C::Val) {
        let b = ctx.concrete_value(backend).expect("concrete backend") as usize;
        let n = ctx.concrete_value(now).expect("concrete time");
        let t = ctx.tracer();
        t.instr(InstrClass::Call, 1);
        t.alu(2);
        t.mem_write(self.r_hb.addr(b as u64 * 8), 8);
        t.instr(InstrClass::Ret, 1);
        self.last_hb[b] = n;
    }

    fn is_alive(&mut self, ctx: &mut C, backend: C::Val, now: C::Val) -> bool {
        let b = ctx.concrete_value(backend).expect("concrete backend") as usize;
        let n = ctx.concrete_value(now).expect("concrete time");
        let t = ctx.tracer();
        t.instr(InstrClass::Call, 1);
        t.mem_read(self.r_hb.addr(b as u64 * 8), 8);
        t.alu(2);
        t.instr(InstrClass::Branch, 1);
        t.instr(InstrClass::Ret, 1);
        n.saturating_sub(self.last_hb[b]) < self.hb_ttl_ns
    }
}

/// Symbolic model of the backend pool.
#[derive(Clone, Copy, Debug)]
pub struct BackendPoolModel {
    ids: BackendPoolIds,
}

impl BackendPoolModel {
    /// Model for a registered instance.
    pub fn new(ids: BackendPoolIds) -> Self {
        BackendPoolModel { ids }
    }
}

impl<C: NfCtx> BackendPoolOps<C> for BackendPoolModel {
    fn heartbeat(&mut self, ctx: &mut C, _backend: C::Val, _now: C::Val) {
        ctx.tracer().stateful(StatefulCall {
            ds: self.ids.ds,
            method: M_HEARTBEAT,
            case: 0,
        });
    }

    fn is_alive(&mut self, ctx: &mut C, _backend: C::Val, _now: C::Val) -> bool {
        let alive = ctx.fresh("backend.alive", Width::W1);
        let taken = ctx.fork(alive);
        ctx.tracer().stateful(StatefulCall {
            ds: self.ids.ds,
            method: M_IS_ALIVE,
            case: if taken { C_ALIVE } else { C_DEAD },
        });
        taken
    }
}

/// Calibrate and register a ring instance (single constant-cost case).
pub fn register_ring(reg: &mut DsRegistry, name: &str, n_backends: u16, m: u64) -> MaglevRingIds {
    let provisional = MaglevRingIds { ds: DsId(u32::MAX) };
    let mut aspace = AddressSpace::new();
    let mut ring = MaglevRing::new(provisional, n_backends.max(2), m.max(13), &mut aspace);
    let mut rec = RecordingTracer::new();
    {
        let mut ctx = ConcreteCtx::new(&mut rec);
        let h = ctx.lit(0x1234_5678, Width::W64);
        let _ = MaglevRingOps::<_>::lookup(&mut ring, &mut ctx, h);
    }
    let (ic, ma) = bolt_trace::count_ic_ma(&rec.events);
    let cyc = bolt_hw::conservative_cycles(&rec.events);
    let contract = DsContract {
        methods: vec![MethodContract {
            name: "lookup",
            cases: vec![CaseContract {
                name: "unconstrained",
                perf: [
                    PerfExpr::constant(ic),
                    PerfExpr::constant(ma),
                    PerfExpr::constant(cyc),
                ],
            }],
        }],
    };
    let ds = reg.register(name, contract);
    MaglevRingIds { ds }
}

/// Calibrate and register a backend pool instance.
pub fn register_pool(reg: &mut DsRegistry, name: &str, n: u16, hb_ttl_ns: u64) -> BackendPoolIds {
    let provisional = BackendPoolIds { ds: DsId(u32::MAX) };
    let measure = |f: &dyn Fn(&mut BackendPool, &mut ConcreteCtx<'_>)| -> [u64; 3] {
        let mut aspace = AddressSpace::new();
        let mut pool = BackendPool::new(provisional, n.max(2), hb_ttl_ns, &mut aspace);
        let mut rec = RecordingTracer::new();
        {
            let mut ctx = ConcreteCtx::new(&mut rec);
            f(&mut pool, &mut ctx);
        }
        let (ic, ma) = bolt_trace::count_ic_ma(&rec.events);
        [ic, ma, bolt_hw::conservative_cycles(&rec.events)]
    };
    let hb = measure(&|pool, ctx| {
        let b = ctx.lit(0, Width::W16);
        let now = ctx.lit(5, Width::W64);
        BackendPoolOps::<_>::heartbeat(pool, ctx, b, now);
    });
    let alive = measure(&|pool, ctx| {
        let b = ctx.lit(0, Width::W16);
        let now = ctx.lit(5, Width::W64);
        BackendPoolOps::<_>::heartbeat(pool, ctx, b, now);
        // Measure only the is_alive below by subtracting? Simpler: the
        // check's cost is identical in both cases; measure it alone on a
        // fresh pool (backend 0 is dead at now=huge, alive at now=0).
    });
    let _ = alive;
    let check = measure(&|pool, ctx| {
        let b = ctx.lit(0, Width::W16);
        let now = ctx.lit(0, Width::W64);
        let _ = BackendPoolOps::<_>::is_alive(pool, ctx, b, now);
    });
    let case = |name: &'static str, v: [u64; 3]| CaseContract {
        name,
        perf: [
            PerfExpr::constant(v[0]),
            PerfExpr::constant(v[1]),
            PerfExpr::constant(v[2]),
        ],
    };
    let contract = DsContract {
        methods: vec![
            MethodContract {
                name: "heartbeat",
                cases: vec![case("heartbeat", hb)],
            },
            MethodContract {
                name: "is_alive",
                cases: vec![case("alive", check), case("dead", check)],
            },
        ],
    };
    let ds = reg.register(name, contract);
    BackendPoolIds { ds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_trace::NullTracer;

    #[test]
    fn ring_is_balanced() {
        let ids = MaglevRingIds { ds: DsId(0) };
        let mut aspace = AddressSpace::new();
        let n = 7u16;
        let ring = MaglevRing::new(ids, n, 1009, &mut aspace);
        let counts = ring.distribution(n);
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(
            max - min <= 2,
            "Maglev balance property violated: {counts:?}"
        );
        assert_eq!(counts.iter().sum::<u64>(), 1009);
    }

    #[test]
    fn ring_lookup_is_stable() {
        let ids = MaglevRingIds { ds: DsId(0) };
        let mut aspace = AddressSpace::new();
        let ring_a = MaglevRing::new(ids, 5, 503, &mut aspace);
        let ring_b = MaglevRing::new(ids, 5, 503, &mut aspace);
        for h in 0..1000u64 {
            assert_eq!(ring_a.raw_lookup(h), ring_b.raw_lookup(h));
        }
    }

    #[test]
    fn ring_minimal_disruption_on_backend_change() {
        // Maglev's property: removing one backend moves few keys among
        // the survivors' assignments.
        let ids = MaglevRingIds { ds: DsId(0) };
        let mut aspace = AddressSpace::new();
        let with_6 = MaglevRing::new(ids, 6, 1009, &mut aspace);
        let with_5 = MaglevRing::new(ids, 5, 1009, &mut aspace);
        let mut moved_among_survivors = 0u64;
        let mut total_survivor_keys = 0u64;
        for h in 0..5000u64 {
            let a = with_6.raw_lookup(h);
            let b = with_5.raw_lookup(h);
            if a < 5 {
                total_survivor_keys += 1;
                if a != b {
                    moved_among_survivors += 1;
                }
            }
        }
        let frac = moved_among_survivors as f64 / total_survivor_keys as f64;
        assert!(
            frac < 0.35,
            "too much disruption among surviving backends: {frac:.2}"
        );
    }

    #[test]
    fn pool_heartbeat_and_liveness() {
        let ids = BackendPoolIds { ds: DsId(0) };
        let mut aspace = AddressSpace::new();
        let mut pool = BackendPool::new(ids, 4, 100, &mut aspace);
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let b1 = ctx.lit(1, Width::W16);
        let t50 = ctx.lit(50, Width::W64);
        BackendPoolOps::<_>::heartbeat(&mut pool, &mut ctx, b1, t50);
        let t100 = ctx.lit(100, Width::W64);
        assert!(BackendPoolOps::<_>::is_alive(&mut pool, &mut ctx, b1, t100));
        let t200 = ctx.lit(200, Width::W64);
        assert!(!BackendPoolOps::<_>::is_alive(
            &mut pool, &mut ctx, b1, t200
        ));
        // Backend 0 never heartbeated and time 200 exceeds the TTL.
        let b0 = ctx.lit(0, Width::W16);
        assert!(!BackendPoolOps::<_>::is_alive(
            &mut pool, &mut ctx, b0, t200
        ));
    }

    #[test]
    fn registered_contracts_are_constant() {
        let mut reg = DsRegistry::new();
        let ring = register_ring(&mut reg, "ring", 8, 1009);
        let pool = register_pool(&mut reg, "backends", 8, 1000);
        use bolt_trace::Metric;
        let rc = reg.resolve(StatefulCall {
            ds: ring.ds,
            method: M_RING_LOOKUP,
            case: 0,
        });
        assert!(rc.expr(Metric::Instructions).as_const().unwrap() > 0);
        assert_eq!(rc.expr(Metric::MemAccesses).as_const(), Some(1));
        let alive = reg.resolve(StatefulCall {
            ds: pool.ds,
            method: M_IS_ALIVE,
            case: C_ALIVE,
        });
        let dead = reg.resolve(StatefulCall {
            ds: pool.ds,
            method: M_IS_ALIVE,
            case: C_DEAD,
        });
        assert_eq!(
            alive.expr(Metric::Instructions).as_const(),
            dead.expr(Metric::Instructions).as_const()
        );
    }

    #[test]
    fn models_fork_and_record_cases() {
        let mut reg = DsRegistry::new();
        let ring = register_ring(&mut reg, "ring", 8, 1009);
        let pool = register_pool(&mut reg, "backends", 8, 1000);
        let result = bolt_see::Explorer::new().explore(|ctx| {
            let mut rm = MaglevRingModel::new(ring, 8);
            let mut pm = BackendPoolModel::new(pool);
            let pkt = ctx.packet(64);
            let h = ctx.load(pkt, 26, 8);
            let b = MaglevRingOps::<_>::lookup(&mut rm, ctx, h);
            let now = ctx.lit(0, Width::W64);
            if BackendPoolOps::<_>::is_alive(&mut pm, ctx, b, now) {
                ctx.tag("alive");
            } else {
                ctx.tag("dead");
            }
        });
        assert_eq!(result.paths.len(), 2);
        assert_eq!(result.tagged("alive").count(), 1);
        assert_eq!(result.tagged("dead").count(), 1);
    }
}
