//! NAT port allocators A and B, and the reverse port map (§5.3).
//!
//! The paper's data-structure-selection use case compares two port
//! allocators that are both O(1) in the common case but have different
//! constants in different regimes:
//!
//! * [`AllocatorA`] — a doubly-linked free list threaded through a port
//!   array. Allocation pops the head (one pointer chase), deallocation
//!   pushes — both constant regardless of occupancy or churn.
//! * [`AllocatorB`] — an array scan: allocation probes per-port records
//!   from a rotating cursor until it finds a free one. At low occupancy
//!   the first probe usually wins and the constant beats A's pointer
//!   chase; at high occupancy the expected probe count `p ≈ 1/(1-load)`
//!   makes it much slower. `p` is the allocator's PCV.
//!
//! [`PortMap`] is the NAT's reverse path: a direct-indexed array from
//! external port to flow metadata (one load to read, one store to write).

use bolt_expr::{PcvId, PerfExpr, Width};
use bolt_see::{ConcreteCtx, NfCtx};
use bolt_trace::{AddressSpace, DsId, InstrClass, MemRegion, RecordingTracer, StatefulCall};

use crate::registry::{CaseContract, DsContract, DsRegistry, MethodContract};

/// Method indices shared by both allocators.
pub const M_ALLOC: u16 = 0;
/// Deallocation.
pub const M_FREE: u16 = 1;
/// `alloc` cases.
pub const C_OK: u16 = 0;
/// Pool exhausted.
pub const C_EXHAUSTED: u16 = 1;

/// PortMap methods.
pub const M_PM_SET: u16 = 0;
/// Read method.
pub const M_PM_GET: u16 = 1;

/// Common allocator interface (NF code is generic over it, so the NAT can
/// be instantiated with either allocator — the §5.3 A/B comparison).
pub trait PortAllocOps<C: NfCtx> {
    /// Allocate a port; `None` when exhausted.
    fn alloc(&mut self, ctx: &mut C) -> Option<C::Val>;
    /// Release a previously allocated port.
    fn free(&mut self, ctx: &mut C, port: C::Val);
}

/// Ids handle for a registered allocator.
#[derive(Clone, Copy, Debug)]
pub struct PortAllocIds {
    /// Registry instance id.
    pub ds: DsId,
    /// PCV `p` — probes per allocation (allocator B only; unused by A).
    pub p: PcvId,
}

// ---------------------------------------------------------------------
// Allocator A: doubly-linked free list
// ---------------------------------------------------------------------

/// Free-list allocator. Nodes are 64-byte port records linked through
/// prev/next indices; the list head/tail live in a metadata line.
/// Allocation pops the head and deallocation appends to the tail (FIFO),
/// so a just-released port is reused as late as possible — the TIME_WAIT
/// hygiene a NAT wants. The constant-cost pointer chase touches one
/// scattered node per operation regardless of occupancy.
#[derive(Debug, Clone)]
pub struct AllocatorA {
    #[allow(dead_code)] // kept: instances carry their registry identity
    ids: PortAllocIds,
    next: Vec<i32>,
    prev: Vec<i32>,
    used: Vec<bool>,
    free_head: i32,
    free_tail: i32,
    n_free: usize,
    base_port: u16,
    r_nodes: MemRegion,
    r_meta: MemRegion,
}

impl AllocatorA {
    /// Allocator over `n` ports starting at `base_port`. The initial free
    /// list is a pseudo-random permutation of the port space (RFC 6056
    /// port randomization), so consecutive allocations touch scattered
    /// nodes.
    pub fn new(ids: PortAllocIds, n: usize, base_port: u16, aspace: &mut AddressSpace) -> Self {
        // Multiplicative permutation (odd multiplier is a bijection mod
        // 2^k); falls back to a stride pattern for non-power-of-two n.
        let perm: Vec<usize> = if n.is_power_of_two() {
            (0..n)
                .map(|i| (i.wrapping_mul(0x9E37_79B1)) & (n - 1))
                .collect()
        } else {
            let stride = (n / 2) | 1;
            (0..n).map(|i| (i * stride) % n).collect()
        };
        let mut next = vec![-1i32; n];
        let mut prev = vec![-1i32; n];
        for w in perm.windows(2) {
            next[w[0]] = w[1] as i32;
            prev[w[1]] = w[0] as i32;
        }
        AllocatorA {
            ids,
            next,
            prev,
            used: vec![false; n],
            free_head: perm[0] as i32,
            free_tail: *perm.last().unwrap() as i32,
            n_free: n,
            base_port,
            r_nodes: aspace.alloc_table(n as u64 * 64),
            r_meta: aspace.alloc_table(64),
        }
    }

    /// Free ports remaining.
    pub fn available(&self) -> usize {
        self.n_free
    }

    /// Mark one specific port allocated without accounting, unlinking it
    /// from wherever it sits in the free list (state synthesis for tables
    /// that reference specific port numbers).
    pub fn raw_take(&mut self, port: u16) {
        let i = (port - self.base_port) as usize;
        assert!(!self.used[i], "raw_take of an allocated port");
        let (p, n) = (self.prev[i], self.next[i]);
        if p >= 0 {
            self.next[p as usize] = n;
        } else {
            self.free_head = n;
        }
        if n >= 0 {
            self.prev[n as usize] = p;
        } else {
            self.free_tail = p;
        }
        self.used[i] = true;
        self.n_free -= 1;
    }

    /// Mark `count` ports allocated without accounting (state synthesis).
    pub fn raw_fill(&mut self, count: usize) {
        for _ in 0..count {
            let h = self.free_head;
            assert!(h >= 0, "raw_fill beyond capacity");
            let n = self.next[h as usize];
            self.free_head = n;
            if n >= 0 {
                self.prev[n as usize] = -1;
            } else {
                self.free_tail = -1;
            }
            self.used[h as usize] = true;
            self.n_free -= 1;
        }
    }
}

impl<C: NfCtx> PortAllocOps<C> for AllocatorA {
    fn alloc(&mut self, ctx: &mut C) -> Option<C::Val> {
        let t = ctx.tracer();
        t.instr(InstrClass::Call, 1);
        t.mem_read(self.r_meta.addr(0), 4); // free head
        t.alu(1);
        t.instr(InstrClass::Branch, 1);
        if self.free_head < 0 {
            t.instr(InstrClass::Ret, 1);
            return None;
        }
        let h = self.free_head as usize;
        t.mem_read_dep(self.r_nodes.addr(h as u64 * 64), 8); // node.next
        t.alu(2);
        let n = self.next[h];
        t.mem_write(self.r_meta.addr(0), 4); // head = next
        t.instr(InstrClass::Branch, 1);
        if n >= 0 {
            t.mem_write(self.r_nodes.addr(n as u64 * 64 + 8), 8); // next.prev
            self.prev[n as usize] = -1;
        }
        t.mem_write(self.r_nodes.addr(h as u64 * 64 + 16), 8); // mark used
        t.alu(2);
        t.instr(InstrClass::Branch, 1);
        if n < 0 {
            t.mem_write(self.r_meta.addr(4), 4); // tail = -1
            self.free_tail = -1;
        }
        self.free_head = n;
        self.used[h] = true;
        self.n_free -= 1;
        t.instr(InstrClass::Ret, 1);
        Some(ctx.lit(self.base_port as u64 + h as u64, Width::W16))
    }

    fn free(&mut self, ctx: &mut C, port: C::Val) {
        let p = ctx.concrete_value(port).expect("concrete port");
        let i = (p - self.base_port as u64) as usize;
        assert!(self.used[i], "double free of port {p}");
        let t = ctx.tracer();
        t.instr(InstrClass::Call, 1);
        t.mem_read(self.r_meta.addr(4), 4); // tail
        t.alu(2);
        t.mem_write(self.r_nodes.addr(i as u64 * 64), 8); // node.next = -1
        t.mem_write(self.r_nodes.addr(i as u64 * 64 + 8), 8); // node.prev = tail
        t.instr(InstrClass::Branch, 1);
        if self.free_tail >= 0 {
            t.mem_write(self.r_nodes.addr(self.free_tail as u64 * 64), 8); // tail.next
            self.next[self.free_tail as usize] = i as i32;
        } else {
            t.mem_write(self.r_meta.addr(0), 4); // head = i
            self.free_head = i as i32;
        }
        t.mem_write(self.r_meta.addr(4), 4);
        t.mem_write(self.r_nodes.addr(i as u64 * 64 + 16), 8); // mark free
        t.alu(1);
        self.next[i] = -1;
        self.prev[i] = self.free_tail;
        self.free_tail = i as i32;
        self.used[i] = false;
        self.n_free += 1;
        t.instr(InstrClass::Ret, 1);
    }
}

// ---------------------------------------------------------------------
// Allocator B: rotating array scan
// ---------------------------------------------------------------------

/// First-fit scan allocator: compact 8-byte per-port records probed from
/// index zero. At low occupancy the first records are usually free and
/// the prefix stays cache-hot through reuse; at high occupancy the scan
/// walks an occupancy-dependent probe count — the paper's "much slower
/// allocation at high flow-table occupancies". Deallocation is a single
/// store.
#[derive(Debug, Clone)]
pub struct AllocatorB {
    ids: PortAllocIds,
    used: Vec<bool>,
    n_free: usize,
    base_port: u16,
    r_slots: MemRegion,
    r_meta: MemRegion,
    /// Probes performed by the most recent allocation (the PCV `p`).
    pub last_probes: u64,
}

impl AllocatorB {
    /// Allocator over `n` ports starting at `base_port`.
    pub fn new(ids: PortAllocIds, n: usize, base_port: u16, aspace: &mut AddressSpace) -> Self {
        AllocatorB {
            ids,
            used: vec![false; n],
            n_free: n,
            base_port,
            r_slots: aspace.alloc_table(n as u64 * 8),
            r_meta: aspace.alloc_table(64),
            last_probes: 0,
        }
    }

    /// Free ports remaining.
    pub fn available(&self) -> usize {
        self.n_free
    }

    /// Mark the first `count` ports allocated without accounting.
    pub fn raw_fill(&mut self, count: usize) {
        for i in 0..count {
            assert!(!self.used[i]);
            self.used[i] = true;
            self.n_free -= 1;
        }
    }

    /// Mark a specific port allocated without accounting (pathological
    /// state synthesis).
    pub fn raw_take(&mut self, port: u16) {
        let i = (port - self.base_port) as usize;
        assert!(!self.used[i], "raw_take of an allocated port");
        self.used[i] = true;
        self.n_free -= 1;
    }
}

impl<C: NfCtx> PortAllocOps<C> for AllocatorB {
    fn alloc(&mut self, ctx: &mut C) -> Option<C::Val> {
        let t = ctx.tracer();
        t.instr(InstrClass::Call, 1);
        // The free count lives in a register (one compare, no memory).
        t.alu(1);
        t.instr(InstrClass::Branch, 1);
        if self.n_free == 0 {
            t.instr(InstrClass::Ret, 1);
            self.last_probes = 0;
            return None;
        }
        let mut probes = 0u64;
        let mut i = 0usize;
        loop {
            // Probe: record load + test-and-increment + loop branch.
            t.mem_read(self.r_slots.addr(i as u64 * 8), 8);
            t.alu(2);
            t.instr(InstrClass::Branch, 1);
            if !self.used[i] {
                break;
            }
            probes += 1;
            i += 1;
        }
        t.mem_write(self.r_slots.addr(i as u64 * 8), 8); // mark used
        t.alu(2);
        self.used[i] = true;
        self.n_free -= 1;
        self.last_probes = probes;
        t.pcv(self.ids.p, probes);
        t.instr(InstrClass::Ret, 1);
        Some(ctx.lit(self.base_port as u64 + i as u64, Width::W16))
    }

    fn free(&mut self, ctx: &mut C, port: C::Val) {
        let p = ctx.concrete_value(port).expect("concrete port");
        let i = (p - self.base_port as u64) as usize;
        assert!(self.used[i], "double free of port {p}");
        let t = ctx.tracer();
        t.instr(InstrClass::Call, 1);
        t.alu(2);
        t.mem_write(self.r_slots.addr(i as u64 * 8), 8);
        t.mem_write(self.r_meta.addr(0), 8);
        self.used[i] = false;
        self.n_free += 1;
        t.instr(InstrClass::Ret, 1);
    }
}

/// Symbolic model shared by both allocators (which one it stands for is
/// determined by the ids/contract it was registered with).
#[derive(Clone, Copy, Debug)]
pub struct PortAllocModel {
    ids: PortAllocIds,
}

impl PortAllocModel {
    /// Model for a registered instance.
    pub fn new(ids: PortAllocIds) -> Self {
        PortAllocModel { ids }
    }
}

impl<C: NfCtx> PortAllocOps<C> for PortAllocModel {
    fn alloc(&mut self, ctx: &mut C) -> Option<C::Val> {
        let ok = ctx.fresh("port_alloc.ok", Width::W1);
        if ctx.fork(ok) {
            ctx.tracer().stateful(StatefulCall {
                ds: self.ids.ds,
                method: M_ALLOC,
                case: C_OK,
            });
            Some(ctx.fresh("port_alloc.port", Width::W16))
        } else {
            ctx.tracer().stateful(StatefulCall {
                ds: self.ids.ds,
                method: M_ALLOC,
                case: C_EXHAUSTED,
            });
            None
        }
    }

    fn free(&mut self, ctx: &mut C, _port: C::Val) {
        ctx.tracer().stateful(StatefulCall {
            ds: self.ids.ds,
            method: M_FREE,
            case: 0,
        });
    }
}

fn consts(v: [u64; 3]) -> [PerfExpr; 3] {
    [
        PerfExpr::constant(v[0]),
        PerfExpr::constant(v[1]),
        PerfExpr::constant(v[2]),
    ]
}

fn run_measure(f: impl FnOnce(&mut ConcreteCtx<'_>)) -> [u64; 3] {
    let mut rec = RecordingTracer::new();
    {
        let mut ctx = ConcreteCtx::new(&mut rec);
        f(&mut ctx);
    }
    let (ic, ma) = bolt_trace::count_ic_ma(&rec.events);
    [ic, ma, bolt_hw::conservative_cycles(&rec.events)]
}

/// Calibrate and register allocator A (constant costs).
pub fn register_a(reg: &mut DsRegistry, name: &str, n: usize, base_port: u16) -> PortAllocIds {
    let p = reg.pcv(name, "p");
    let provisional = PortAllocIds {
        ds: DsId(u32::MAX),
        p,
    };
    // Worst-case alloc: head node on a cold line, successor on another.
    let alloc_cost = run_measure(|ctx| {
        let mut aspace = AddressSpace::new();
        let mut a = AllocatorA::new(provisional, n.max(4), base_port, &mut aspace);
        let got = PortAllocOps::<_>::alloc(&mut a, ctx).unwrap();
        let _ = got;
    });
    let exhausted = run_measure(|ctx| {
        let mut aspace = AddressSpace::new();
        let mut a = AllocatorA::new(provisional, 4, base_port, &mut aspace);
        a.raw_fill(4);
        assert!(PortAllocOps::<_>::alloc(&mut a, ctx).is_none());
    });
    let free_cost = run_measure(|ctx| {
        let mut aspace = AddressSpace::new();
        let mut a = AllocatorA::new(provisional, n.max(4), base_port, &mut aspace);
        a.raw_fill(2);
        let port = ctx.lit(base_port as u64, Width::W16);
        PortAllocOps::<_>::free(&mut a, ctx, port);
    });
    let contract = DsContract {
        methods: vec![
            MethodContract {
                name: "alloc",
                cases: vec![
                    CaseContract {
                        name: "ok",
                        perf: consts(alloc_cost),
                    },
                    CaseContract {
                        name: "exhausted",
                        perf: consts(exhausted),
                    },
                ],
            },
            MethodContract {
                name: "free",
                cases: vec![CaseContract {
                    name: "free",
                    perf: consts(free_cost),
                }],
            },
        ],
    };
    let ds = reg.register(name, contract);
    PortAllocIds { ds, p }
}

/// Calibrate and register allocator B (alloc linear in probes `p`).
pub fn register_b(reg: &mut DsRegistry, name: &str, n: usize, base_port: u16) -> PortAllocIds {
    let p = reg.pcv(name, "p");
    let provisional = PortAllocIds {
        ds: DsId(u32::MAX),
        p,
    };
    let nn = n.max(64);
    let alloc0 = run_measure(|ctx| {
        let mut aspace = AddressSpace::new();
        let mut b = AllocatorB::new(provisional, nn, base_port, &mut aspace);
        assert!(PortAllocOps::<_>::alloc(&mut b, ctx).is_some());
    });
    let d = 16u64;
    let alloc_d = run_measure(|ctx| {
        let mut aspace = AddressSpace::new();
        let mut b = AllocatorB::new(provisional, nn, base_port, &mut aspace);
        b.raw_fill(d as usize);
        assert!(PortAllocOps::<_>::alloc(&mut b, ctx).is_some());
    });
    // Ceiling division plus a one-unit margin per metric: the per-probe
    // cost is lumpy at cache-line boundaries (8 records per line), and
    // the contract must stay an upper bound at every probe count.
    let p_slope = [
        (alloc_d[0] - alloc0[0]).div_ceil(d),
        (alloc_d[1] - alloc0[1]).div_ceil(d),
        (alloc_d[2] - alloc0[2]).div_ceil(d) + 25,
    ];
    let exhausted = run_measure(|ctx| {
        let mut aspace = AddressSpace::new();
        let mut b = AllocatorB::new(provisional, 64, base_port, &mut aspace);
        b.raw_fill(64);
        assert!(PortAllocOps::<_>::alloc(&mut b, ctx).is_none());
    });
    let free_cost = run_measure(|ctx| {
        let mut aspace = AddressSpace::new();
        let mut b = AllocatorB::new(provisional, nn, base_port, &mut aspace);
        b.raw_fill(2);
        let port = ctx.lit(base_port as u64, Width::W16);
        PortAllocOps::<_>::free(&mut b, ctx, port);
    });
    let ok_case = {
        let build = |m: usize| {
            let mut e = PerfExpr::constant(alloc0[m]);
            e.add_assign(&PerfExpr::var(p, p_slope[m]));
            e
        };
        CaseContract {
            name: "ok",
            perf: [build(0), build(1), build(2)],
        }
    };
    let contract = DsContract {
        methods: vec![
            MethodContract {
                name: "alloc",
                cases: vec![
                    ok_case,
                    CaseContract {
                        name: "exhausted",
                        perf: consts(exhausted),
                    },
                ],
            },
            MethodContract {
                name: "free",
                cases: vec![CaseContract {
                    name: "free",
                    perf: consts(free_cost),
                }],
            },
        ],
    };
    let ds = reg.register(name, contract);
    PortAllocIds { ds, p }
}

// ---------------------------------------------------------------------
// PortMap: the NAT's reverse (external-port → flow) array
// ---------------------------------------------------------------------

/// Ids handle for a registered port map.
#[derive(Clone, Copy, Debug)]
pub struct PortMapIds {
    /// Registry instance id.
    pub ds: DsId,
}

/// Operations of the port map.
pub trait PortMapOps<C: NfCtx> {
    /// Associate `value` with `port` (0 clears).
    fn set(&mut self, ctx: &mut C, port: C::Val, value: C::Val);
    /// Read the value associated with `port` (0 if none).
    fn get(&mut self, ctx: &mut C, port: C::Val) -> C::Val;
}

/// Direct-indexed array from port to 8-byte flow metadata.
#[derive(Debug, Clone)]
pub struct PortMap {
    #[allow(dead_code)] // kept: instances carry their registry identity
    ids: PortMapIds,
    entries: Vec<u64>,
    base_port: u16,
    r: MemRegion,
}

impl PortMap {
    /// Map over `n` ports starting at `base_port`.
    pub fn new(ids: PortMapIds, n: usize, base_port: u16, aspace: &mut AddressSpace) -> Self {
        PortMap {
            ids,
            entries: vec![0; n],
            base_port,
            r: aspace.alloc_table(n as u64 * 8),
        }
    }
}

impl PortMap {
    fn index_of(&self, p: u64) -> Option<usize> {
        let i = p.checked_sub(self.base_port as u64)? as usize;
        (i < self.entries.len()).then_some(i)
    }
}

impl<C: NfCtx> PortMapOps<C> for PortMap {
    fn set(&mut self, ctx: &mut C, port: C::Val, value: C::Val) {
        let p = ctx.concrete_value(port).expect("concrete port");
        let v = ctx.concrete_value(value).expect("concrete value");
        let i = self
            .index_of(p)
            .expect("set on a port outside the map's range");
        let t = ctx.tracer();
        t.instr(InstrClass::Call, 1);
        t.alu(2);
        t.mem_write(self.r.addr(i as u64 * 8), 8);
        t.instr(InstrClass::Ret, 1);
        self.entries[i] = v;
    }

    fn get(&mut self, ctx: &mut C, port: C::Val) -> C::Val {
        let p = ctx.concrete_value(port).expect("concrete port");
        let t = ctx.tracer();
        t.instr(InstrClass::Call, 1);
        // Range check first: external traffic carries arbitrary ports.
        t.alu(2);
        t.instr(InstrClass::Branch, 1);
        let out = match self.index_of(p) {
            Some(i) => {
                t.mem_read(self.r.addr(i as u64 * 8), 8);
                self.entries[i]
            }
            None => 0,
        };
        t.instr(InstrClass::Ret, 1);
        ctx.lit(out, Width::W64)
    }
}

/// Symbolic model of the port map.
#[derive(Clone, Copy, Debug)]
pub struct PortMapModel {
    ids: PortMapIds,
}

impl PortMapModel {
    /// Model for a registered instance.
    pub fn new(ids: PortMapIds) -> Self {
        PortMapModel { ids }
    }
}

impl<C: NfCtx> PortMapOps<C> for PortMapModel {
    fn set(&mut self, ctx: &mut C, _port: C::Val, _value: C::Val) {
        ctx.tracer().stateful(StatefulCall {
            ds: self.ids.ds,
            method: M_PM_SET,
            case: 0,
        });
    }

    fn get(&mut self, ctx: &mut C, _port: C::Val) -> C::Val {
        ctx.tracer().stateful(StatefulCall {
            ds: self.ids.ds,
            method: M_PM_GET,
            case: 0,
        });
        ctx.fresh("port_map.value", Width::W64)
    }
}

/// Calibrate and register a port map.
pub fn register_map(reg: &mut DsRegistry, name: &str, n: usize, base_port: u16) -> PortMapIds {
    let provisional = PortMapIds { ds: DsId(u32::MAX) };
    let set_cost = run_measure(|ctx| {
        let mut aspace = AddressSpace::new();
        let mut m = PortMap::new(provisional, n.max(4), base_port, &mut aspace);
        let port = ctx.lit(base_port as u64, Width::W16);
        let v = ctx.lit(7, Width::W64);
        PortMapOps::<_>::set(&mut m, ctx, port, v);
    });
    let get_cost = run_measure(|ctx| {
        let mut aspace = AddressSpace::new();
        let mut m = PortMap::new(provisional, n.max(4), base_port, &mut aspace);
        let port = ctx.lit(base_port as u64, Width::W16);
        let _ = PortMapOps::<_>::get(&mut m, ctx, port);
    });
    let contract = DsContract {
        methods: vec![
            MethodContract {
                name: "set",
                cases: vec![CaseContract {
                    name: "set",
                    perf: consts(set_cost),
                }],
            },
            MethodContract {
                name: "get",
                cases: vec![CaseContract {
                    name: "get",
                    perf: consts(get_cost),
                }],
            },
        ],
    };
    let ds = reg.register(name, contract);
    PortMapIds { ds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_expr::PcvAssignment;
    use bolt_trace::{Metric, NullTracer};
    use std::collections::HashSet;

    #[test]
    fn allocator_a_never_double_allocates() {
        let mut reg = DsRegistry::new();
        let ids = register_a(&mut reg, "alloc_a", 64, 1024);
        let mut aspace = AddressSpace::new();
        let mut a = AllocatorA::new(ids, 64, 1024, &mut aspace);
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let mut seen = HashSet::new();
        for _ in 0..64 {
            let p = PortAllocOps::<_>::alloc(&mut a, &mut ctx).unwrap();
            let pv = ctx.concrete_value(p).unwrap();
            assert!(seen.insert(pv), "duplicate port {pv}");
            assert!((1024..1088).contains(&pv));
        }
        assert!(PortAllocOps::<_>::alloc(&mut a, &mut ctx).is_none());
        // Free everything and allocate again.
        for &pv in &seen {
            let p = ctx.lit(pv, Width::W16);
            PortAllocOps::<_>::free(&mut a, &mut ctx, p);
        }
        assert_eq!(a.available(), 64);
        assert!(PortAllocOps::<_>::alloc(&mut a, &mut ctx).is_some());
    }

    #[test]
    fn allocator_b_first_fit_recycles_and_counts_probes() {
        let mut reg = DsRegistry::new();
        let ids = register_b(&mut reg, "alloc_b", 64, 2048);
        let mut aspace = AddressSpace::new();
        let mut b = AllocatorB::new(ids, 64, 2048, &mut aspace);
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let first = PortAllocOps::<_>::alloc(&mut b, &mut ctx).unwrap();
        assert_eq!(b.last_probes, 0, "empty array: first record is free");
        let _second = PortAllocOps::<_>::alloc(&mut b, &mut ctx).unwrap();
        assert_eq!(b.last_probes, 1, "first-fit skips the used prefix");
        // Freeing the first port makes it the next allocation (first fit).
        PortAllocOps::<_>::free(&mut b, &mut ctx, first);
        let again = PortAllocOps::<_>::alloc(&mut b, &mut ctx).unwrap();
        assert_eq!(ctx.concrete_value(again), ctx.concrete_value(first));
        assert_eq!(b.last_probes, 0);
        // Fill up; exhaustion is O(1) via the free counter.
        while PortAllocOps::<_>::alloc(&mut b, &mut ctx).is_some() {}
        assert_eq!(b.available(), 0);
    }

    #[test]
    fn contracts_bound_measured_allocations() {
        let mut reg = DsRegistry::new();
        let ids_b = register_b(&mut reg, "alloc_b", 256, 1);
        let mut aspace = AddressSpace::new();
        let mut b = AllocatorB::new(ids_b, 256, 1, &mut aspace);
        b.raw_fill(200); // high occupancy
        for _ in 0..20 {
            let mut rec = RecordingTracer::new();
            {
                let mut ctx = ConcreteCtx::new(&mut rec);
                let _ = PortAllocOps::<_>::alloc(&mut b, &mut ctx);
            }
            let (ic, ma) = bolt_trace::count_ic_ma(&rec.events);
            let cyc = bolt_hw::conservative_cycles(&rec.events);
            let mut env = PcvAssignment::new();
            env.set(ids_b.p, b.last_probes);
            let case = reg.resolve(StatefulCall {
                ds: ids_b.ds,
                method: M_ALLOC,
                case: C_OK,
            });
            assert!(case.expr(Metric::Instructions).eval(&env) >= ic);
            assert!(case.expr(Metric::MemAccesses).eval(&env) >= ma);
            assert!(case.expr(Metric::Cycles).eval(&env) >= cyc);
        }
    }

    #[test]
    fn a_is_occupancy_insensitive_b_is_not() {
        let mut reg = DsRegistry::new();
        let ids_a = register_a(&mut reg, "alloc_a", 4096, 1);
        let ids_b = register_b(&mut reg, "alloc_b", 4096, 1);
        let a_case = reg.resolve(StatefulCall {
            ds: ids_a.ds,
            method: M_ALLOC,
            case: C_OK,
        });
        let b_case = reg.resolve(StatefulCall {
            ds: ids_b.ds,
            method: M_ALLOC,
            case: C_OK,
        });
        // A's contract is a constant.
        assert!(a_case.expr(Metric::Cycles).as_const().is_some());
        // B's contract grows with p.
        // With a rotating cursor the next slot is free at low occupancy.
        let mut lo = PcvAssignment::new();
        lo.set(ids_b.p, 0);
        let mut hi = PcvAssignment::new();
        hi.set(ids_b.p, 40);
        let b_lo = b_case.expr(Metric::Cycles).eval(&lo);
        let b_hi = b_case.expr(Metric::Cycles).eval(&hi);
        let a_c = a_case.expr(Metric::Cycles).as_const().unwrap();
        assert!(
            b_lo < a_c,
            "B must beat A at low occupancy ({b_lo} vs {a_c})"
        );
        assert!(
            b_hi > a_c,
            "A must beat B at high occupancy ({b_hi} vs {a_c})"
        );
    }

    #[test]
    fn port_map_roundtrip() {
        let mut reg = DsRegistry::new();
        let ids = register_map(&mut reg, "port_map", 128, 4096);
        let mut aspace = AddressSpace::new();
        let mut m = PortMap::new(ids, 128, 4096, &mut aspace);
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let port = ctx.lit(4100, Width::W16);
        let empty = PortMapOps::<_>::get(&mut m, &mut ctx, port);
        assert_eq!(ctx.concrete_value(empty), Some(0));
        let v = ctx.lit(0xABCD, Width::W64);
        PortMapOps::<_>::set(&mut m, &mut ctx, port, v);
        let got = PortMapOps::<_>::get(&mut m, &mut ctx, port);
        assert_eq!(ctx.concrete_value(got), Some(0xABCD));
    }

    #[test]
    fn models_fork_ok_and_exhausted() {
        let mut reg = DsRegistry::new();
        let ids = register_a(&mut reg, "alloc_a", 64, 1);
        let result = bolt_see::Explorer::new().explore(|ctx| {
            let mut model = PortAllocModel::new(ids);
            let _pkt = ctx.packet(64);
            match PortAllocOps::<_>::alloc(&mut model, ctx) {
                Some(_) => ctx.tag("ok"),
                None => ctx.tag("exhausted"),
            }
        });
        assert_eq!(result.paths.len(), 2);
        assert_eq!(result.tagged("ok").count(), 1);
        assert_eq!(result.tagged("exhausted").count(), 1);
    }
}
