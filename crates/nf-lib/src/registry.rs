//! Registry of stateful data-structure instances and their contracts.
//!
//! Symbolic paths reference library calls by [`StatefulCall`] ids; this
//! registry resolves them to the method's [`CaseContract`], and owns the
//! [`PcvTable`] that scopes PCV names. Registration is idempotent by
//! instance name, so the analysis build (models) and the production build
//! (concrete structures) can both register the same logical instance and
//! agree on ids.

use bolt_expr::{PcvId, PcvTable, PerfExpr};
use bolt_trace::{DsId, Metric, StatefulCall};

/// Per-metric cost expressions for one contract case.
#[derive(Clone, Debug)]
pub struct CaseContract {
    /// Human-readable case name (e.g. `"hit"`, `"miss"`, `"rehash"`).
    pub name: &'static str,
    /// One [`PerfExpr`] per [`Metric`], indexed by [`Metric::index`].
    pub perf: [PerfExpr; 3],
}

impl CaseContract {
    /// The expression for a metric.
    pub fn expr(&self, metric: Metric) -> &PerfExpr {
        &self.perf[metric.index()]
    }
}

/// Contract for one method: a set of cases selected by the abstract state
/// (§3.3 — "the performance contract of a flow table get method will have
/// different formulae depending on whether the flow is present").
#[derive(Clone, Debug)]
pub struct MethodContract {
    /// Method name (e.g. `"get"`).
    pub name: &'static str,
    /// The cases, indexed by the `case` field of [`StatefulCall`].
    pub cases: Vec<CaseContract>,
}

/// Contract for a whole data-structure instance.
#[derive(Clone, Debug, Default)]
pub struct DsContract {
    /// Methods, indexed by the `method` field of [`StatefulCall`].
    pub methods: Vec<MethodContract>,
}

/// A registered instance.
#[derive(Clone, Debug)]
pub struct DsInstance {
    /// Instance name (unique within a registry), e.g. `"flow_table"`.
    pub name: String,
    /// Its performance contract.
    pub contract: DsContract,
}

/// The registry: instances + the PCV name table they share.
#[derive(Debug, Default)]
pub struct DsRegistry {
    /// PCV names used by all contracts in this registry.
    pub pcvs: PcvTable,
    instances: Vec<DsInstance>,
}

impl DsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an instance (idempotent by name: re-registration returns
    /// the existing id and keeps the first contract).
    pub fn register(&mut self, name: &str, contract: DsContract) -> DsId {
        if let Some(i) = self.instances.iter().position(|d| d.name == name) {
            return DsId(i as u32);
        }
        self.instances.push(DsInstance {
            name: name.to_string(),
            contract,
        });
        DsId((self.instances.len() - 1) as u32)
    }

    /// Look up an instance.
    pub fn instance(&self, ds: DsId) -> &DsInstance {
        &self.instances[ds.0 as usize]
    }

    /// Number of registered instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Resolve a recorded stateful call to its contract case.
    pub fn resolve(&self, call: StatefulCall) -> &CaseContract {
        &self.instances[call.ds.0 as usize].contract.methods[call.method as usize].cases
            [call.case as usize]
    }

    /// Intern an instance-scoped PCV name. With an empty instance name the
    /// short name is used bare (matching the paper's single-instance
    /// tables: `e`, `c`, `t`, `o`, `l`, `n`).
    pub fn pcv(&mut self, instance: &str, short: &str) -> PcvId {
        if instance.is_empty() {
            self.pcvs.intern(short)
        } else {
            self.pcvs.intern(&format!("{instance}.{short}"))
        }
    }

    /// Render one method's contract as human-readable rows (used by the
    /// bench harnesses that print the paper's contract tables).
    pub fn render_method(&self, ds: DsId, method: u16, metric: Metric) -> Vec<(String, String)> {
        let m = &self.instance(ds).contract.methods[method as usize];
        m.cases
            .iter()
            .map(|c| {
                (
                    c.name.to_string(),
                    format!("{}", c.expr(metric).display(&self.pcvs)),
                )
            })
            .collect()
    }
}

/// Convenience builder for `[PerfExpr; 3]` case costs.
///
/// Instructions and memory accesses are exact polynomials; cycles are the
/// conservative worst-case expression (every potentially-uncached access
/// at main-memory latency, worst-case instruction latencies).
#[derive(Clone, Debug, Default)]
pub struct CasePerf {
    /// Instruction-count expression.
    pub instructions: PerfExpr,
    /// Memory-access expression.
    pub mem_accesses: PerfExpr,
    /// Conservative cycles expression.
    pub cycles: PerfExpr,
}

impl CasePerf {
    /// Finish into the contract array.
    pub fn build(self, name: &'static str) -> CaseContract {
        CaseContract {
            name,
            perf: [self.instructions, self.mem_accesses, self.cycles],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_expr::PerfExpr;

    fn dummy_contract() -> DsContract {
        DsContract {
            methods: vec![MethodContract {
                name: "get",
                cases: vec![
                    CaseContract {
                        name: "hit",
                        perf: [
                            PerfExpr::constant(10),
                            PerfExpr::constant(3),
                            PerfExpr::constant(100),
                        ],
                    },
                    CaseContract {
                        name: "miss",
                        perf: [
                            PerfExpr::constant(5),
                            PerfExpr::constant(1),
                            PerfExpr::constant(50),
                        ],
                    },
                ],
            }],
        }
    }

    #[test]
    fn registration_is_idempotent() {
        let mut reg = DsRegistry::new();
        let a = reg.register("flow_table", dummy_contract());
        let b = reg.register("flow_table", dummy_contract());
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn resolve_stateful_call() {
        let mut reg = DsRegistry::new();
        let ds = reg.register("t", dummy_contract());
        let case = reg.resolve(StatefulCall {
            ds,
            method: 0,
            case: 1,
        });
        assert_eq!(case.name, "miss");
        assert_eq!(case.expr(Metric::Instructions).as_const(), Some(5));
    }

    #[test]
    fn pcv_scoping() {
        let mut reg = DsRegistry::new();
        let bare = reg.pcv("", "e");
        let scoped = reg.pcv("mac_table", "e");
        assert_ne!(bare, scoped);
        assert_eq!(reg.pcvs.name(bare), "e");
        assert_eq!(reg.pcvs.name(scoped), "mac_table.e");
        assert_eq!(reg.pcv("", "e"), bare, "interning is idempotent");
    }

    #[test]
    fn render_method_rows() {
        let mut reg = DsRegistry::new();
        let ds = reg.register("t", dummy_contract());
        let rows = reg.render_method(ds, 0, Metric::Instructions);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], ("hit".to_string(), "10".to_string()));
    }
}
