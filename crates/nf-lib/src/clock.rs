//! Per-packet timestamp source with configurable granularity.
//!
//! §5.3's VigNAT performance bug: flows were time-stamped at *second*
//! granularity, so every flow that arrived within one second carried the
//! same timestamp and the whole batch expired at once when the clock
//! ticked — producing the multi-microsecond latency tail of Figure 4.
//! Increasing the granularity to milliseconds spread expiry out.
//!
//! The clock truncates to a power-of-two number of nanoseconds so the
//! truncation costs one AND instead of a divide, matching how a DPDK NF
//! would bucket TSC readings.

use bolt_expr::Width;
use bolt_see::NfCtx;
use bolt_trace::InstrClass;

/// Timestamp granularity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Granularity {
    /// ~1.07 s buckets (2³⁰ ns) — the original VigNAT behaviour.
    Seconds,
    /// ~1.05 ms buckets (2²⁰ ns) — the fixed behaviour.
    Milliseconds,
    /// Full nanosecond resolution.
    Nanoseconds,
}

impl Granularity {
    /// Bitmask clearing the sub-granularity bits.
    pub fn mask(self) -> u64 {
        match self {
            Granularity::Seconds => !((1u64 << 30) - 1),
            Granularity::Milliseconds => !((1u64 << 20) - 1),
            Granularity::Nanoseconds => u64::MAX,
        }
    }

    /// Truncate a nanosecond timestamp.
    pub fn truncate(self, t_ns: u64) -> u64 {
        t_ns & self.mask()
    }
}

/// The concrete clock: driven by the workload (each injected packet
/// advances it), read by NFs through [`Clock::now`].
#[derive(Clone, Debug)]
pub struct Clock {
    /// Current absolute time in nanoseconds (untruncated).
    pub t_ns: u64,
    /// Truncation applied on read.
    pub granularity: Granularity,
}

impl Clock {
    /// New clock at t=0.
    pub fn new(granularity: Granularity) -> Self {
        Clock {
            t_ns: 0,
            granularity,
        }
    }

    /// Advance to an absolute time (monotonic).
    pub fn advance_to(&mut self, t_ns: u64) {
        debug_assert!(t_ns >= self.t_ns, "clock must be monotonic");
        self.t_ns = t_ns;
    }

    /// Read the truncated time the way an NF would: one TSC read (modelled
    /// as `Other`) plus the truncation AND. Returns a context value.
    pub fn now<C: NfCtx>(&self, ctx: &mut C) -> C::Val {
        ctx.tracer().instr(InstrClass::Other, 1);
        ctx.tracer().instr(InstrClass::Alu, 1);
        ctx.lit(self.granularity.truncate(self.t_ns), Width::W64)
    }

    /// The truncated value as a plain integer (for oracles in tests).
    pub fn now_raw(&self) -> u64 {
        self.granularity.truncate(self.t_ns)
    }
}

/// Symbolic model of the clock: time is an opaque fresh symbol per packet
/// (the contract never branches on absolute time).
#[derive(Clone, Copy, Debug)]
pub struct ClockModel;

impl ClockModel {
    /// Read symbolic time (same cost events as the concrete clock).
    pub fn now<C: NfCtx>(&self, ctx: &mut C) -> C::Val {
        ctx.tracer().instr(InstrClass::Other, 1);
        ctx.tracer().instr(InstrClass::Alu, 1);
        ctx.fresh("clock.now", Width::W64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_see::ConcreteCtx;
    use bolt_trace::{CountingTracer, NullTracer};

    #[test]
    fn second_granularity_batches_timestamps() {
        let mut c = Clock::new(Granularity::Seconds);
        c.advance_to(100);
        let a = c.now_raw();
        c.advance_to((1 << 30) - 1);
        let b = c.now_raw();
        assert_eq!(a, b, "same second bucket");
        c.advance_to(1 << 30);
        assert_ne!(c.now_raw(), a, "next bucket");
    }

    #[test]
    fn millisecond_granularity_spreads_timestamps() {
        let mut c = Clock::new(Granularity::Milliseconds);
        c.advance_to(100);
        let a = c.now_raw();
        c.advance_to(1 << 20);
        assert_ne!(c.now_raw(), a);
    }

    #[test]
    fn reading_costs_are_fixed() {
        let mut t = CountingTracer::new();
        let clock = Clock::new(Granularity::Seconds);
        {
            let mut ctx = ConcreteCtx::new(&mut t);
            let _ = clock.now(&mut ctx);
        }
        assert_eq!(t.instructions, 2);
    }

    #[test]
    fn concrete_read_matches_raw() {
        let mut c = Clock::new(Granularity::Milliseconds);
        c.advance_to(123 << 20);
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let v = c.now(&mut ctx);
        assert_eq!(ctx.concrete_value(v), Some(c.now_raw()));
    }

    #[test]
    fn nanosecond_granularity_is_identity() {
        assert_eq!(Granularity::Nanoseconds.truncate(0xDEADBEEF), 0xDEADBEEF);
    }
}
