//! Chained-expiry flow table: open-addressing hash map + age list.
//!
//! This is the reproduction of Vigor/VigNAT's core stateful pair (hash
//! map plus "double chain" expirator) that the paper's NAT, load
//! balancer, and bridge all build on:
//!
//! * **slots** — open addressing with linear probing and tombstones.
//!   Probing distinguishes the paper's two PCVs: `t` counts probed
//!   non-terminal slots (tombstones *and* occupied mismatches), `c` counts
//!   the occupied mismatches that forced a key comparison. Key comparisons
//!   exit at the first differing word, while the contract charges the
//!   full-width compare — this deliberate path coalescing (§3.2's
//!   "worst bit pattern" choice) is the source of the conservative gap.
//! * **age list** — an intrusive doubly-linked list ordered by last-use
//!   time. [`FlowTable::expire`] pops expired entries from the head and
//!   erases each from the hash structure by key probe, which is what
//!   creates the contract's `e·t` and `e·c` cross terms (Tables 4 and 6).
//!
//! Contracts are produced by *automated pre-analysis* at registration
//! time ([`register`]): a scratch instance is driven through
//! adversarially-worst calibration scenarios (tombstone runs for the `t`
//! slope, last-word-differing keys for the `c` slope), and the measured
//! IC/MA/conservative-cycle coefficients become the contract. The paper
//! derived these by hand from assembly and lists automating it as future
//! work (§6); calibration gives the same worst-case coefficients without
//! the transcription risk.

use bolt_expr::{PcvId, PerfExpr, Width};
use bolt_see::{ConcreteCtx, NfCtx};
use bolt_trace::{
    AddressSpace, DsId, InstrClass, MemRegion, RecordingTracer, StatefulCall, Tracer,
};

use crate::registry::{CaseContract, DsContract, DsRegistry, MethodContract};

/// Slot stride: one cache line per entry.
const SLOT: u64 = 64;
/// Offsets inside a slot record.
const OFF_STATE: u64 = 0;
const OFF_KEY: u64 = 8;
const OFF_VAL: u64 = 40;
const OFF_TS: u64 = 48;
const OFF_APREV: u64 = 56;
const OFF_ANEXT: u64 = 60;

/// Slot states.
const EMPTY: u8 = 0;
const TOMB: u8 = 1;
const OCC: u8 = 2;

/// Method indices (the `method` field of [`StatefulCall`]).
pub const M_GET: u16 = 0;
/// `peek` — lookup without refreshing the entry's age.
pub const M_PEEK: u16 = 1;
/// `put` — insert a new entry.
pub const M_PUT: u16 = 2;
/// `expire` — pop and erase all expired entries.
pub const M_EXPIRE: u16 = 3;
/// `rehash` — re-seed and rebuild (collision-attack defence).
pub const M_REHASH: u16 = 4;
/// `update` — overwrite the value of an existing entry (refreshes age).
pub const M_UPDATE: u16 = 5;

/// Case indices for `get`/`peek`.
pub const C_HIT: u16 = 0;
/// Miss case.
pub const C_MISS: u16 = 1;
/// Case indices for `put`.
pub const C_STORED: u16 = 0;
/// Table-full case.
pub const C_FULL: u16 = 1;

/// Configuration of a flow table instance.
#[derive(Clone, Copy, Debug)]
pub struct FlowTableParams {
    /// Number of slots (power of two).
    pub capacity: usize,
    /// Entry lifetime in nanoseconds.
    pub ttl_ns: u64,
}

impl FlowTableParams {
    /// Typical NAT-ish defaults: 8192 flows, 10 ms scaled lifetime.
    pub fn default_nat() -> Self {
        FlowTableParams {
            capacity: 8192,
            ttl_ns: 10_000_000,
        }
    }
}

/// Copyable handle tying together the registry id and the PCV ids of one
/// registered instance. Shared by the concrete table and its model.
#[derive(Clone, Copy, Debug)]
pub struct FlowTableIds {
    /// Registry instance id.
    pub ds: DsId,
    /// PCV `e` — entries expired by one `expire` call.
    pub e: PcvId,
    /// PCV `c` — occupied-mismatch comparisons in one probe.
    pub c: PcvId,
    /// PCV `t` — probed non-terminal slots in one probe.
    pub t: PcvId,
    /// PCV `o` — occupancy (entries present).
    pub o: PcvId,
    /// PCV `te` — worst per-erase probe traversals during one `expire`.
    /// Scoped separately from `t` so a long *lookup* probe in the same
    /// packet cannot multiply into the `e·te` cross term.
    pub te: PcvId,
    /// PCV `ce` — worst per-erase comparisons during one `expire`.
    pub ce: PcvId,
}

/// Common operations both the concrete table and the model provide; NF
/// stateless code is written against this trait (the Vigor split).
pub trait FlowTableOps<C: NfCtx, const K: usize> {
    /// Remove all entries older than the configured TTL. Returns the
    /// number of entries expired.
    fn expire(&mut self, ctx: &mut C, now: C::Val) -> C::Val;
    /// Look up `key`; on hit, refresh its timestamp/age and return the
    /// stored value.
    fn get(&mut self, ctx: &mut C, key: &[C::Val; K], now: C::Val) -> Option<C::Val>;
    /// Look up `key` without refreshing (read-only lookup).
    fn peek(&mut self, ctx: &mut C, key: &[C::Val; K]) -> Option<C::Val>;
    /// Insert a new entry (the caller must have seen a miss first).
    /// Returns `false` when the table is full.
    fn put(&mut self, ctx: &mut C, key: &[C::Val; K], val: C::Val, now: C::Val) -> bool;
    /// Overwrite the value of an existing entry (its timestamp and age
    /// position are untouched). Returns `false` if the key is absent.
    fn update(&mut self, ctx: &mut C, key: &[C::Val; K], val: C::Val, now: C::Val) -> bool;
}

// ---------------------------------------------------------------------
// Concrete implementation
// ---------------------------------------------------------------------

/// The instrumented production flow table.
#[derive(Debug, Clone)]
pub struct FlowTable<const K: usize> {
    ids: FlowTableIds,
    params: FlowTableParams,
    mask: u64,
    seed: u64,
    state: Vec<u8>,
    keys: Vec<[u64; K]>,
    vals: Vec<u64>,
    ts: Vec<u64>,
    aprev: Vec<i32>,
    anext: Vec<i32>,
    head: i32,
    tail: i32,
    len: usize,
    r_slots: MemRegion,
    r_meta: MemRegion,
    /// Probe statistics of the most recent operation (`t`, `c`).
    pub last_probe: (u64, u64),
    /// Values of the entries removed by the most recent `expire` call
    /// (consumed by composite structures that must release resources the
    /// values refer to, e.g. the NAT's allocated ports).
    pub last_expired: Vec<u64>,
}

/// Outcome of an internal probe.
enum Probe {
    Found(usize),
    /// First insertable slot (tombstone or empty).
    Free(usize),
    Miss,
}

impl<const K: usize> FlowTable<K> {
    /// Build a concrete table. `aspace` provides the simulated addresses.
    pub fn new(ids: FlowTableIds, params: FlowTableParams, aspace: &mut AddressSpace) -> Self {
        assert!(params.capacity.is_power_of_two());
        assert!(K >= 1 && K <= 4, "slot layout holds 1..=4 key words");
        let cap = params.capacity;
        FlowTable {
            ids,
            params,
            mask: (cap - 1) as u64,
            seed: 0x5bd1_e995_1234_5678,
            state: vec![EMPTY; cap],
            keys: vec![[0; K]; cap],
            vals: vec![0; cap],
            ts: vec![0; cap],
            aprev: vec![-1; cap],
            anext: vec![-1; cap],
            head: -1,
            tail: -1,
            len: 0,
            r_slots: aspace.alloc_table(cap as u64 * SLOT),
            r_meta: aspace.alloc_table(64),
            last_probe: (0, 0),
            last_expired: Vec::new(),
        }
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.params.capacity
    }

    /// The hash seed (changes on rehash).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn hash_raw(seed: u64, key: &[u64; K]) -> u64 {
        let mut h = seed;
        for &w in key {
            h ^= w;
            h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 29;
        }
        h
    }

    /// The slot index `key` hashes to (for adversarial workload
    /// construction and tests).
    pub fn bucket_of(&self, key: &[u64; K]) -> usize {
        (Self::hash_raw(self.seed, key) & self.mask) as usize
    }

    fn slot_addr(&self, i: usize, off: u64) -> u64 {
        self.r_slots.addr(i as u64 * SLOT + off)
    }

    fn concrete_key<C: NfCtx>(ctx: &C, key: &[C::Val; K]) -> [u64; K] {
        let mut out = [0u64; K];
        for (o, v) in out.iter_mut().zip(key.iter()) {
            *o = ctx
                .concrete_value(*v)
                .expect("concrete flow table used with symbolic key");
        }
        out
    }

    /// Charge the hash computation: one CRC per key word + mix/mask.
    fn hash_cost(t: &mut dyn Tracer) {
        t.instr(InstrClass::Crc, K as u32);
        t.alu(2);
    }

    /// Instrumented probe. `for_insert` stops at the first usable slot.
    fn probe(&mut self, t: &mut dyn Tracer, key: &[u64; K], for_insert: bool) -> Probe {
        Self::hash_cost(t);
        let start = (Self::hash_raw(self.seed, key) & self.mask) as usize;
        let cap = self.params.capacity;
        let mut t_count = 0u64;
        let mut c_count = 0u64;
        let mut visited = 0usize;
        let mut idx = start;
        let result = loop {
            if visited > cap {
                // Probe bound: wrapped the whole table without a verdict
                // (possible only when no slot is EMPTY).
                break Probe::Miss;
            }
            visited += 1;
            // Per-visit base: state load + compare + branch.
            t.mem_read(self.slot_addr(idx, OFF_STATE), 8);
            t.alu(1);
            t.branch_instr();
            match self.state[idx] {
                EMPTY => {
                    break if for_insert {
                        Probe::Free(idx)
                    } else {
                        Probe::Miss
                    };
                }
                TOMB => {
                    if for_insert {
                        break Probe::Free(idx);
                    }
                    t_count += 1;
                }
                _ => {
                    if for_insert {
                        // Insert skips occupied slots without comparing.
                        t_count += 1;
                    } else {
                        // Key comparison, word by word, early exit.
                        let mut matched = true;
                        for (w, kw) in key.iter().enumerate() {
                            t.mem_read(self.slot_addr(idx, OFF_KEY + 8 * w as u64), 8);
                            t.alu(1);
                            t.branch_instr();
                            if self.keys[idx][w] != *kw {
                                matched = false;
                                break;
                            }
                        }
                        if matched {
                            break Probe::Found(idx);
                        }
                        t_count += 1;
                        c_count += 1;
                    }
                }
            }
            // Advance: index increment + wrap mask + loop bound check.
            t.alu(2);
            t.branch_instr();
            idx = (idx + 1) & self.mask as usize;
        };
        self.last_probe = (t_count, c_count);
        result
    }

    fn age_append(&mut self, t: &mut dyn Tracer, i: usize) {
        t.mem_read(self.r_meta.addr(4), 4); // tail
        t.alu(2);
        t.branch_instr();
        if self.tail >= 0 {
            t.mem_write(self.slot_addr(self.tail as usize, OFF_ANEXT), 4);
            self.anext[self.tail as usize] = i as i32;
        } else {
            t.mem_write(self.r_meta.addr(0), 4); // head
            self.head = i as i32;
        }
        t.mem_write(self.slot_addr(i, OFF_APREV), 4);
        t.mem_write(self.slot_addr(i, OFF_ANEXT), 4);
        self.aprev[i] = self.tail;
        self.anext[i] = -1;
        t.mem_write(self.r_meta.addr(4), 4);
        self.tail = i as i32;
        t.alu(2);
    }

    fn age_unlink(&mut self, t: &mut dyn Tracer, i: usize) {
        t.mem_read(self.slot_addr(i, OFF_APREV), 4);
        t.mem_read(self.slot_addr(i, OFF_ANEXT), 4);
        t.alu(2);
        t.branch_instr();
        let (p, n) = (self.aprev[i], self.anext[i]);
        if p >= 0 {
            t.mem_write(self.slot_addr(p as usize, OFF_ANEXT), 4);
            self.anext[p as usize] = n;
        } else {
            t.mem_write(self.r_meta.addr(0), 4);
            self.head = n;
        }
        t.branch_instr();
        if n >= 0 {
            t.mem_write(self.slot_addr(n as usize, OFF_APREV), 4);
            self.aprev[n as usize] = p;
        } else {
            t.mem_write(self.r_meta.addr(4), 4);
            self.tail = p;
        }
        t.alu(2);
    }

    /// Erase the entry at `idx` (already located) from the hash structure.
    fn erase_at(&mut self, t: &mut dyn Tracer, idx: usize) {
        t.mem_write(self.slot_addr(idx, OFF_STATE), 8);
        self.state[idx] = TOMB;
        t.alu(1);
        t.mem_write(self.r_meta.addr(8), 4); // len--
        self.len -= 1;
    }

    // ------------------------------------------------------------------
    // Raw (uninstrumented) state manipulation: pathological-state
    // synthesis (§5.1) and tests.
    // ------------------------------------------------------------------

    /// Place an entry directly into a slot, bypassing hashing and cost
    /// accounting, and append it to the age list. Panics if occupied.
    pub fn raw_place(&mut self, slot: usize, key: [u64; K], val: u64, ts: u64) {
        assert_eq!(self.state[slot], EMPTY, "raw_place into non-empty slot");
        self.state[slot] = OCC;
        self.keys[slot] = key;
        self.vals[slot] = val;
        self.ts[slot] = ts;
        self.aprev[slot] = self.tail;
        self.anext[slot] = -1;
        if self.tail >= 0 {
            self.anext[self.tail as usize] = slot as i32;
        } else {
            self.head = slot as i32;
        }
        self.tail = slot as i32;
        self.len += 1;
    }

    /// Mark a slot as a tombstone (calibration helper).
    pub fn raw_tombstone(&mut self, slot: usize) {
        assert_eq!(self.state[slot], EMPTY);
        self.state[slot] = TOMB;
    }

    /// Uninstrumented lookup (test oracle support).
    pub fn raw_get(&self, key: &[u64; K]) -> Option<u64> {
        let mut idx = (Self::hash_raw(self.seed, key) & self.mask) as usize;
        for _ in 0..=self.params.capacity {
            match self.state[idx] {
                EMPTY => return None,
                OCC if self.keys[idx] == *key => return Some(self.vals[idx]),
                _ => {}
            }
            idx = (idx + 1) & self.mask as usize;
        }
        None
    }

    /// Fill the table completely with aged, maximally-colliding entries:
    /// the synthesized pathological state of §5.1 (Br1/NAT1/LB1). All keys
    /// probe through one run and differ only in their last word, so every
    /// expiry probe pays the full comparison cost.
    ///
    /// `uniform_clusters = true` instead spreads entries as singleton
    /// chains (every erase is O(1)), which keeps the product-form contract
    /// tight; see EXPERIMENTS.md for the two variants.
    pub fn synthesize_pathological(&mut self, uniform_clusters: bool) {
        let cap = self.params.capacity;
        self.synthesize_aged(cap, uniform_clusters, |nth| nth as u64)
    }

    /// [`FlowTable::synthesize_pathological`] with control over the value
    /// stored in the n-th placed entry — composite structures (the NAT)
    /// need the values to be resources they actually own (port numbers).
    pub fn synthesize_pathological_with(
        &mut self,
        uniform_clusters: bool,
        val_of: impl Fn(usize) -> u64,
    ) {
        let cap = self.params.capacity;
        self.synthesize_aged(cap, uniform_clusters, val_of)
    }

    /// Fill `count ≤ capacity` slots with aged entries. Leaving a few
    /// slots empty keeps post-expiry lookups from scanning the whole
    /// tombstone field, which would conflate the lookup's `t` into the
    /// expiry cross terms (see EXPERIMENTS.md's NAT1 discussion).
    pub fn synthesize_aged(
        &mut self,
        count: usize,
        uniform_clusters: bool,
        val_of: impl Fn(usize) -> u64,
    ) {
        assert_eq!(self.len, 0, "synthesize into an empty table");
        let cap = count.min(self.params.capacity);
        if uniform_clusters {
            let mut placed = 0usize;
            let mut nonce = 0u64;
            while placed < cap {
                let mut key = [0u64; K];
                key[K - 1] = nonce;
                nonce += 1;
                let b = self.bucket_of(&key);
                if self.state[b] == EMPTY {
                    self.raw_place(b, key, val_of(placed), 0);
                    placed += 1;
                }
                if nonce > cap as u64 * 1000 {
                    // Fall back: place remaining anywhere (still aged).
                    for s in 0..cap {
                        if self.state[s] == EMPTY {
                            let mut k2 = [0u64; K];
                            k2[K - 1] = nonce;
                            nonce += 1;
                            self.raw_place(s, k2, val_of(placed), 0);
                            placed += 1;
                        }
                    }
                    break;
                }
            }
        } else {
            // One giant probe run starting at slot 0. Find a key whose
            // bucket is 0, then synthesize keys sharing every word except
            // the last; place them consecutively so the probe run is the
            // whole table.
            let mut nonce = 0u64;
            for slot in 0..cap {
                let mut key = [0u64; K];
                loop {
                    key[K - 1] = nonce;
                    nonce += 1;
                    if self.bucket_of(&key) == 0 {
                        break;
                    }
                }
                self.raw_place(slot, key, val_of(slot), 0);
            }
        }
    }
}

impl<C: NfCtx, const K: usize> FlowTableOps<C, K> for FlowTable<K> {
    fn expire(&mut self, ctx: &mut C, now: C::Val) -> C::Val {
        let now = ctx
            .concrete_value(now)
            .expect("concrete table needs concrete time");
        let cutoff = now.saturating_sub(self.params.ttl_ns);
        {
            let t = ctx.tracer();
            t.instr(InstrClass::Call, 1);
            t.alu(2);
        }
        self.last_expired.clear();
        let mut e = 0u64;
        loop {
            // Read the age-list head and its timestamp.
            {
                let t = ctx.tracer();
                t.mem_read(self.r_meta.addr(0), 4);
                t.branch_instr();
            }
            if self.head < 0 {
                break;
            }
            let idx = self.head as usize;
            {
                let t = ctx.tracer();
                t.mem_read(self.slot_addr(idx, OFF_TS), 8);
                t.alu(1);
                t.branch_instr();
            }
            if self.ts[idx] >= cutoff {
                break;
            }
            // Expired: unlink from the age list, erase by key probe.
            self.age_unlink(ctx.tracer(), idx);
            // Re-read the key to erase it from the hash structure.
            for w in 0..K {
                ctx.tracer()
                    .mem_read(self.slot_addr(idx, OFF_KEY + 8 * w as u64), 8);
            }
            let key = self.keys[idx];
            match self.probe(ctx.tracer(), &key, false) {
                Probe::Found(fidx) => {
                    debug_assert_eq!(fidx, idx);
                    self.last_expired.push(self.vals[fidx]);
                    self.erase_at(ctx.tracer(), fidx);
                }
                _ => unreachable!("age-listed entry must be in the table"),
            }
            let (pt, pc) = self.last_probe;
            ctx.tracer().pcv(self.ids.te, pt);
            ctx.tracer().pcv(self.ids.ce, pc);
            e += 1;
        }
        let t = ctx.tracer();
        t.pcv(self.ids.e, e);
        t.instr(InstrClass::Ret, 1);
        ctx.lit(e, Width::W64)
    }

    fn get(&mut self, ctx: &mut C, key: &[C::Val; K], now: C::Val) -> Option<C::Val> {
        let k = Self::concrete_key(ctx, key);
        let now = ctx.concrete_value(now).expect("concrete time");
        ctx.tracer().instr(InstrClass::Call, 1);
        let r = self.probe(ctx.tracer(), &k, false);
        let (pt, pc) = self.last_probe;
        ctx.tracer().pcv(self.ids.t, pt);
        ctx.tracer().pcv(self.ids.c, pc);
        let out = match r {
            Probe::Found(idx) => {
                let t = ctx.tracer();
                t.mem_read(self.slot_addr(idx, OFF_VAL), 8);
                t.mem_write(self.slot_addr(idx, OFF_TS), 8);
                t.alu(1);
                self.ts[idx] = now;
                // Refresh: move to the age-list tail.
                self.age_unlink(ctx.tracer(), idx);
                self.age_append(ctx.tracer(), idx);
                Some(ctx.lit(self.vals[idx], Width::W64))
            }
            _ => None,
        };
        ctx.tracer().instr(InstrClass::Ret, 1);
        out
    }

    fn peek(&mut self, ctx: &mut C, key: &[C::Val; K]) -> Option<C::Val> {
        let k = Self::concrete_key(ctx, key);
        ctx.tracer().instr(InstrClass::Call, 1);
        let r = self.probe(ctx.tracer(), &k, false);
        let (pt, pc) = self.last_probe;
        ctx.tracer().pcv(self.ids.t, pt);
        ctx.tracer().pcv(self.ids.c, pc);
        let out = match r {
            Probe::Found(idx) => {
                ctx.tracer().mem_read(self.slot_addr(idx, OFF_VAL), 8);
                Some(ctx.lit(self.vals[idx], Width::W64))
            }
            _ => None,
        };
        ctx.tracer().instr(InstrClass::Ret, 1);
        out
    }

    fn put(&mut self, ctx: &mut C, key: &[C::Val; K], val: C::Val, now: C::Val) -> bool {
        let k = Self::concrete_key(ctx, key);
        let v = ctx.concrete_value(val).expect("concrete value");
        let now = ctx.concrete_value(now).expect("concrete time");
        let t = ctx.tracer();
        t.instr(InstrClass::Call, 1);
        // Occupancy check first: the full case is O(1) (Table 6 row 4).
        t.mem_read(self.r_meta.addr(8), 4);
        t.alu(1);
        t.branch_instr();
        if self.len == self.params.capacity {
            t.pcv(self.ids.o, self.len as u64);
            t.instr(InstrClass::Ret, 1);
            return false;
        }
        let r = self.probe(ctx.tracer(), &k, true);
        let (pt, _) = self.last_probe;
        ctx.tracer().pcv(self.ids.t, pt);
        let idx = match r {
            Probe::Free(i) => i,
            _ => unreachable!("non-full table must have a free slot"),
        };
        let t = ctx.tracer();
        t.mem_write(self.slot_addr(idx, OFF_STATE), 8);
        for w in 0..K {
            t.mem_write(self.slot_addr(idx, OFF_KEY + 8 * w as u64), 8);
        }
        t.mem_write(self.slot_addr(idx, OFF_VAL), 8);
        t.mem_write(self.slot_addr(idx, OFF_TS), 8);
        t.alu(3);
        self.state[idx] = OCC;
        self.keys[idx] = k;
        self.vals[idx] = v;
        self.ts[idx] = now;
        self.age_append(ctx.tracer(), idx);
        let t = ctx.tracer();
        t.mem_write(self.r_meta.addr(8), 4);
        t.alu(1);
        self.len += 1;
        t.pcv(self.ids.o, self.len as u64);
        t.instr(InstrClass::Ret, 1);
        true
    }

    fn update(&mut self, ctx: &mut C, key: &[C::Val; K], val: C::Val, _now: C::Val) -> bool {
        let k = Self::concrete_key(ctx, key);
        let v = ctx.concrete_value(val).expect("concrete value");
        ctx.tracer().instr(InstrClass::Call, 1);
        let r = self.probe(ctx.tracer(), &k, false);
        let (pt, pc) = self.last_probe;
        ctx.tracer().pcv(self.ids.t, pt);
        ctx.tracer().pcv(self.ids.c, pc);
        let out = match r {
            Probe::Found(idx) => {
                let t = ctx.tracer();
                t.mem_write(self.slot_addr(idx, OFF_VAL), 8);
                t.alu(1);
                self.vals[idx] = v;
                true
            }
            _ => false,
        };
        ctx.tracer().instr(InstrClass::Ret, 1);
        out
    }
}

impl<const K: usize> FlowTable<K> {
    /// Re-seed and rebuild the table (the bridge's collision-attack
    /// defence, §5.2). Clears tombstones. Cost: a large constant (array
    /// allocation + clear) plus per-entry rehash work.
    pub fn rehash<C: NfCtx>(&mut self, ctx: &mut C, new_seed: u64) {
        let t = ctx.tracer();
        t.instr(InstrClass::Call, 1);
        // Allocate + clear the new slot array: one store per line.
        t.instr(InstrClass::Other, 2); // allocator round-trip
        for i in 0..self.params.capacity {
            t.mem_write(self.slot_addr(i, OFF_STATE), 8);
        }
        t.alu(self.params.capacity as u32); // memset index arithmetic
        let old: Vec<(usize, [u64; K], u64, u64)> = (0..self.params.capacity)
            .filter(|&i| self.state[i] == OCC)
            .map(|i| (i, self.keys[i], self.vals[i], self.ts[i]))
            .collect();
        // Preserve age order by walking the age list.
        let mut order = Vec::with_capacity(self.len);
        let mut cur = self.head;
        while cur >= 0 {
            order.push(cur as usize);
            cur = self.anext[cur as usize];
        }
        // Reset state.
        self.seed = new_seed;
        self.state.iter_mut().for_each(|s| *s = EMPTY);
        self.head = -1;
        self.tail = -1;
        self.len = 0;
        let by_idx: std::collections::HashMap<usize, ([u64; K], u64, u64)> = old
            .into_iter()
            .map(|(i, k, v, ts)| (i, (k, v, ts)))
            .collect();
        for i in order {
            let (k, v, ts) = by_idx[&i];
            // Per-entry: read key + val + ts, hash, probe to free slot,
            // write the record, relink the age list.
            let t = ctx.tracer();
            for w in 0..K {
                t.mem_read(self.slot_addr(i, OFF_KEY + 8 * w as u64), 8);
            }
            t.mem_read(self.slot_addr(i, OFF_VAL), 8);
            t.mem_read(self.slot_addr(i, OFF_TS), 8);
            match self.probe(ctx.tracer(), &k, true) {
                Probe::Free(idx) => {
                    let t = ctx.tracer();
                    t.mem_write(self.slot_addr(idx, OFF_STATE), 8);
                    for w in 0..K {
                        t.mem_write(self.slot_addr(idx, OFF_KEY + 8 * w as u64), 8);
                    }
                    t.mem_write(self.slot_addr(idx, OFF_VAL), 8);
                    t.mem_write(self.slot_addr(idx, OFF_TS), 8);
                    t.alu(4);
                    self.state[idx] = OCC;
                    self.keys[idx] = k;
                    self.vals[idx] = v;
                    self.ts[idx] = ts;
                    self.age_append(ctx.tracer(), idx);
                    self.len += 1;
                }
                _ => unreachable!("rebuilt table cannot be full"),
            }
        }
        let t = ctx.tracer();
        t.pcv(self.ids.o, self.len as u64);
        t.instr(InstrClass::Ret, 1);
    }
}

// ---------------------------------------------------------------------
// Symbolic model
// ---------------------------------------------------------------------

/// The analysis-build model: returns fresh symbols, forks per contract
/// case, and records [`StatefulCall`] events (§3.3, Algorithm 3).
#[derive(Clone, Copy, Debug)]
pub struct FlowTableModel {
    ids: FlowTableIds,
    capacity: u64,
}

impl FlowTableModel {
    /// Model for a registered instance.
    pub fn new(ids: FlowTableIds, params: FlowTableParams) -> Self {
        FlowTableModel {
            ids,
            capacity: params.capacity as u64,
        }
    }

    fn call(&self, ctx: &mut impl NfCtx, method: u16, case: u16) {
        ctx.tracer().stateful(StatefulCall {
            ds: self.ids.ds,
            method,
            case,
        });
    }
}

impl<C: NfCtx, const K: usize> FlowTableOps<C, K> for FlowTableModel {
    fn expire(&mut self, ctx: &mut C, _now: C::Val) -> C::Val {
        self.call(ctx, M_EXPIRE, 0);
        let e = ctx.fresh("flow.expired", Width::W64);
        let cap = ctx.lit(self.capacity, Width::W64);
        let bounded = ctx.ule_free(e, cap);
        ctx.assume(bounded);
        e
    }

    fn get(&mut self, ctx: &mut C, _key: &[C::Val; K], _now: C::Val) -> Option<C::Val> {
        let hit = ctx.fresh("flow.get.hit", Width::W1);
        if ctx.fork(hit) {
            self.call(ctx, M_GET, C_HIT);
            Some(ctx.fresh("flow.get.val", Width::W64))
        } else {
            self.call(ctx, M_GET, C_MISS);
            None
        }
    }

    fn peek(&mut self, ctx: &mut C, _key: &[C::Val; K]) -> Option<C::Val> {
        let hit = ctx.fresh("flow.peek.hit", Width::W1);
        if ctx.fork(hit) {
            self.call(ctx, M_PEEK, C_HIT);
            Some(ctx.fresh("flow.peek.val", Width::W64))
        } else {
            self.call(ctx, M_PEEK, C_MISS);
            None
        }
    }

    fn put(&mut self, ctx: &mut C, _key: &[C::Val; K], _val: C::Val, _now: C::Val) -> bool {
        let stored = ctx.fresh("flow.put.stored", Width::W1);
        if ctx.fork(stored) {
            self.call(ctx, M_PUT, C_STORED);
            true
        } else {
            self.call(ctx, M_PUT, C_FULL);
            false
        }
    }

    fn update(&mut self, ctx: &mut C, _key: &[C::Val; K], _val: C::Val, _now: C::Val) -> bool {
        let hit = ctx.fresh("flow.update.hit", Width::W1);
        if ctx.fork(hit) {
            self.call(ctx, M_UPDATE, C_HIT);
            true
        } else {
            self.call(ctx, M_UPDATE, C_MISS);
            false
        }
    }
}

// ---------------------------------------------------------------------
// Automated pre-analysis (contract calibration)
// ---------------------------------------------------------------------

/// Measured `(instructions, mem accesses, conservative cycles)` of one
/// operation.
fn measure<const K: usize>(
    table: &mut FlowTable<K>,
    op: impl FnOnce(&mut FlowTable<K>, &mut ConcreteCtx<'_>),
) -> [u64; 3] {
    let mut rec = RecordingTracer::new();
    {
        let mut ctx = ConcreteCtx::new(&mut rec);
        op(table, &mut ctx);
    }
    let (ic, ma) = bolt_trace::count_ic_ma(&rec.events);
    let cyc = bolt_hw_conservative(&rec.events);
    [ic, ma, cyc]
}

/// Conservative cycles of an event slice (local shim to avoid a circular
/// dev-dependency; identical arithmetic to `bolt-hw`'s conservative model
/// would be preferable, so we link it directly).
fn bolt_hw_conservative(events: &[bolt_trace::TraceEvent]) -> u64 {
    bolt_hw::conservative_cycles(events)
}

/// Key whose words are all `tag` except the last, which is `n` — the
/// "differs in the last word" worst-case comparison shape.
fn cal_key<const K: usize>(tag: u64, n: u64) -> [u64; K] {
    let mut k = [tag; K];
    k[K - 1] = n;
    k
}

fn lit_key<const K: usize>(
    ctx: &mut ConcreteCtx<'_>,
    k: [u64; K],
) -> [bolt_see::concrete::CVal; K] {
    k.map(|w| ctx.lit(w, Width::W64))
}

/// Calibrate the per-case contract coefficients on a scratch instance.
///
/// Scenarios (all placed with raw state control, so the coefficients are
/// exact):
/// * miss into an empty bucket → `get`/`peek` miss fixed cost;
/// * hit at probe distance 0 → hit fixed cost;
/// * hit behind `d` tombstones → `t` slope;
/// * hit behind `d` occupied last-word-differing keys → `t+c` slope;
/// * put into empty/full table → put fixed costs; put behind occupied run
///   → put `t` slope;
/// * expire of 1..n singleton entries → `e` slope (probe slopes reuse the
///   `get` slopes, as the machinery is shared);
/// * rehash of `o` entries → rehash fixed + per-entry slope.
fn calibrate<const K: usize>(ids: FlowTableIds, params: FlowTableParams) -> DsContract {
    // Calibration geometry is independent of the instance configuration:
    // coefficients depend only on the probe/age machinery, not on the
    // capacity or TTL (the capacity-dependent rehash clear cost is scaled
    // below).
    let cal_params = FlowTableParams {
        capacity: 256,
        ttl_ns: 1_000,
    };
    let d = 8u64; // slope step
                  // Background entries make every age-list neighbour a distinct,
                  // previously-untouched cache line, so the calibrated cycle costs are
                  // the layout-worst case (mid-list refresh touches prev, next, and the
                  // old tail). Background keys live in far-away buckets (fresh ts, never
                  // probed, never expired).
    let mk = || {
        let mut aspace = AddressSpace::new();
        let mut tb = FlowTable::<K>::new(ids, cal_params, &mut aspace);
        let mut placed = 0;
        let mut nonce = 1_000_000u64;
        while placed < 2 {
            let k: [u64; K] = cal_key(0xB6, nonce);
            nonce += 1;
            let kb = tb.bucket_of(&k);
            // Keep background far from the low slots used by scenarios.
            if kb > cal_params.capacity / 2 && tb.state[kb] == EMPTY {
                tb.raw_place(kb, k, 0, u64::MAX / 2);
                placed += 1;
            }
        }
        tb
    };
    // Scenario entries are appended *between* two later background tails
    // so that refresh unlinks from a genuine mid-list position.
    let add_tail_bg = |tb: &mut FlowTable<K>, tag: u64| {
        let mut nonce = 2_000_000 + tag;
        loop {
            let k: [u64; K] = cal_key(0xB7, nonce);
            nonce += 97;
            let kb = tb.bucket_of(&k);
            if kb > cal_params.capacity / 2 && tb.state[kb] == EMPTY {
                tb.raw_place(kb, k, 0, u64::MAX / 2);
                break;
            }
        }
    };

    // --- get/peek ---
    let probe_key: [u64; K] = cal_key(7, 0xFFFF);
    // Miss, empty bucket (t=0, c=0).
    let mut t0 = mk();
    let miss0 = measure(&mut t0, |tb, ctx| {
        let k = lit_key(ctx, probe_key);
        let now = ctx.lit(0, Width::W64);
        assert!(FlowTableOps::<_, K>::get(tb, ctx, &k, now).is_none());
    });
    // Hit at distance 0, mid-age-list (worst refresh layout).
    let mut t1 = mk();
    let b = t1.bucket_of(&probe_key);
    t1.raw_place(b, probe_key, 1, 0);
    add_tail_bg(&mut t1, 1);
    add_tail_bg(&mut t1, 2);
    let hit0 = measure(&mut t1, |tb, ctx| {
        let k = lit_key(ctx, probe_key);
        let now = ctx.lit(0, Width::W64);
        assert!(FlowTableOps::<_, K>::get(tb, ctx, &k, now).is_some());
    });
    let mut t1b = mk();
    t1b.raw_place(b, probe_key, 1, 0);
    add_tail_bg(&mut t1b, 1);
    add_tail_bg(&mut t1b, 2);
    let peek0 = measure(&mut t1b, |tb, ctx| {
        let k = lit_key(ctx, probe_key);
        assert!(FlowTableOps::<_, K>::peek(tb, ctx, &k).is_some());
    });
    let mut t1c = mk();
    t1c.raw_place(b, probe_key, 1, 0);
    add_tail_bg(&mut t1c, 1);
    add_tail_bg(&mut t1c, 2);
    let upd0 = measure(&mut t1c, |tb, ctx| {
        let k = lit_key(ctx, probe_key);
        let v = ctx.lit(2, Width::W64);
        let now = ctx.lit(0, Width::W64);
        assert!(FlowTableOps::<_, K>::update(tb, ctx, &k, v, now));
    });
    // Hit behind d tombstones: t slope.
    let mut t2 = mk();
    for j in 0..d {
        t2.raw_tombstone((b + j as usize) & (cal_params.capacity - 1));
    }
    t2.raw_place(
        (b + d as usize) & (cal_params.capacity - 1),
        probe_key,
        1,
        0,
    );
    add_tail_bg(&mut t2, 1);
    add_tail_bg(&mut t2, 2);
    let hit_t = measure(&mut t2, |tb, ctx| {
        let k = lit_key(ctx, probe_key);
        let now = ctx.lit(0, Width::W64);
        assert!(FlowTableOps::<_, K>::get(tb, ctx, &k, now).is_some());
    });
    let t_slope = per_metric(|m| (hit_t[m] - hit0[m]) / d);
    // Hit behind d occupied worst-mismatch keys: t+c slope.
    let mut t3 = mk();
    for j in 0..d {
        t3.raw_place(
            (b + j as usize) & (cal_params.capacity - 1),
            cal_key(7, j), // same words except last
            9,
            0,
        );
    }
    // Keep the target's age-list neighbourhood identical to the baseline
    // (cold background lines on both sides plus a cold tail), otherwise
    // the probed entries double as warmed-up age neighbours and the
    // cycles slope comes out unsound.
    add_tail_bg(&mut t3, 1);
    t3.raw_place(
        (b + d as usize) & (cal_params.capacity - 1),
        probe_key,
        1,
        0,
    );
    add_tail_bg(&mut t3, 2);
    add_tail_bg(&mut t3, 3);
    let hit_tc = measure(&mut t3, |tb, ctx| {
        let k = lit_key(ctx, probe_key);
        let now = ctx.lit(0, Width::W64);
        assert!(FlowTableOps::<_, K>::get(tb, ctx, &k, now).is_some());
    });
    let c_slope = per_metric(|m| (hit_tc[m] - hit0[m]) / d - t_slope[m]);

    // --- put ---
    let mut t4 = mk();
    let put_key: [u64; K] = cal_key(3, 0xAAAA);
    let put0 = measure(&mut t4, |tb, ctx| {
        let k = lit_key(ctx, put_key);
        let v = ctx.lit(5, Width::W64);
        let now = ctx.lit(0, Width::W64);
        assert!(FlowTableOps::<_, K>::put(tb, ctx, &k, v, now));
    });
    let mut t5 = mk();
    let pb = t5.bucket_of(&put_key);
    for j in 0..d {
        t5.raw_place(
            (pb + j as usize) & (cal_params.capacity - 1),
            cal_key(3, j),
            9,
            0,
        );
    }
    add_tail_bg(&mut t5, 3);
    let put_t = measure(&mut t5, |tb, ctx| {
        let k = lit_key(ctx, put_key);
        let v = ctx.lit(5, Width::W64);
        let now = ctx.lit(0, Width::W64);
        assert!(FlowTableOps::<_, K>::put(tb, ctx, &k, v, now));
    });
    let put_t_slope = per_metric(|m| (put_t[m] - put0[m]) / d);
    // Full table (fresh instance: the full check never touches the age
    // list, so no background entries are needed).
    let mut aspace6 = AddressSpace::new();
    let mut t6 = FlowTable::<K>::new(ids, cal_params, &mut aspace6);
    t6.synthesize_pathological(true);
    let put_full = measure(&mut t6, |tb, ctx| {
        let k = lit_key(ctx, cal_key(99, 0x1234));
        let v = ctx.lit(5, Width::W64);
        let now = ctx.lit(0, Width::W64);
        assert!(!FlowTableOps::<_, K>::put(tb, ctx, &k, v, now));
    });

    // --- expire ---
    // Nothing expired (background entries are fresh).
    let mut t7 = mk();
    let exp0 = measure(&mut t7, |tb, ctx| {
        let now = ctx.lit(0, Width::W64);
        let e = FlowTableOps::<_, K>::expire(tb, ctx, now);
        assert_eq!(ctx.concrete_value(e), Some(0));
    });
    // d singleton aged entries (t=c=0 per erase), then fresh survivors so
    // the final head fix-up write hits a cold line.
    let mut aspace8 = AddressSpace::new();
    let mut t8 = FlowTable::<K>::new(ids, cal_params, &mut aspace8);
    let mut placed = 0u64;
    let mut nonce = 0u64;
    while placed < d {
        let k: [u64; K] = cal_key(11, nonce);
        nonce += 1;
        let kb = t8.bucket_of(&k);
        if t8.state[kb] == EMPTY {
            t8.raw_place(kb, k, 1, 0);
            placed += 1;
        }
    }
    add_tail_bg(&mut t8, 5);
    let exp_d = measure(&mut t8, |tb, ctx| {
        // The aged (ts = 1) entries expire at now = ttl + 10; the fresh
        // background survivors (ts = u64::MAX / 2) stay.
        let now = ctx.lit(1_000 + 10, Width::W64);
        let e = FlowTableOps::<_, K>::expire(tb, ctx, now);
        assert_eq!(ctx.concrete_value(e), Some(d));
    });
    let e_slope = per_metric(|m| (exp_d[m] - exp0[m]).div_ceil(d));

    // --- rehash ---
    let mut t9 = mk();
    let reh0 = measure(&mut t9, |tb, ctx| tb.rehash(ctx, 0x1111));
    let mut t10 = mk();
    let mut placed = 0u64;
    let mut nonce = 0u64;
    while placed < d {
        let k: [u64; K] = cal_key(13, nonce);
        nonce += 1;
        let kb = t10.bucket_of(&k);
        if t10.state[kb] == EMPTY {
            t10.raw_place(kb, k, 1, 0);
            placed += 1;
        }
    }
    let reh_d = measure(&mut t10, |tb, ctx| tb.rehash(ctx, 0x2222));
    let reh_slope = per_metric(|m| (reh_d[m] - reh0[m]) / d);
    // The rehash fixed cost scales with capacity (array clear): measured
    // at the calibration capacity, scaled to the real capacity.
    let scale = params.capacity as u64 / cal_params.capacity as u64;
    let reh_fixed = per_metric(|m| {
        let clear = reh_d[m] - reh_slope[m] * d; // ≈ fixed at cal capacity
                                                 // Conservative: the clear part is at most the whole fixed cost;
                                                 // scale it all by the capacity ratio (over-estimates the small
                                                 // seed/meta part, which keeps the bound sound).
        clear * scale.max(1)
    });
    // Re-insert probes during rehash are coalesced into a worst-case of 8
    // extra probe steps per entry (fresh table, bounded clustering).
    let reh_per_entry = per_metric(|m| reh_slope[m] + 8 * t_slope[m]);

    // --- assemble ---
    let e = ids.e;
    let c = ids.c;
    let t = ids.t;
    let o = ids.o;
    let te = ids.te;
    let ce = ids.ce;
    let hit_case = |fixed: [u64; 3]| case_expr(fixed, &[(t, t_slope), (c, c_slope)], &[]);
    DsContract {
        methods: vec![
            MethodContract {
                name: "get",
                cases: vec![hit_case(hit0).build("hit"), hit_case(miss0).build("miss")],
            },
            MethodContract {
                name: "peek",
                cases: vec![hit_case(peek0).build("hit"), hit_case(miss0).build("miss")],
            },
            MethodContract {
                name: "put",
                cases: vec![
                    case_expr(put0, &[(t, put_t_slope)], &[]).build("stored"),
                    case_expr(put_full, &[], &[]).build("full"),
                ],
            },
            MethodContract {
                name: "expire",
                cases: vec![case_expr(
                    exp0,
                    &[(e, e_slope)],
                    &[((e, te), t_slope), ((e, ce), c_slope)],
                )
                .build("expired")],
            },
            MethodContract {
                name: "rehash",
                cases: vec![case_expr(reh_fixed, &[(o, reh_per_entry)], &[]).build("rehash")],
            },
            MethodContract {
                name: "update",
                cases: vec![hit_case(upd0).build("hit"), hit_case(miss0).build("miss")],
            },
        ],
    }
}

fn per_metric(f: impl Fn(usize) -> u64) -> [u64; 3] {
    [f(0), f(1), f(2)]
}

/// Build the three per-metric expressions from a fixed part, linear
/// slopes, and degree-2 cross terms.
fn case_expr(
    fixed: [u64; 3],
    linear: &[(PcvId, [u64; 3])],
    cross: &[((PcvId, PcvId), [u64; 3])],
) -> crate::registry::CasePerf {
    let build = |m: usize| {
        let mut e = PerfExpr::constant(fixed[m]);
        for (pcv, slope) in linear {
            e.add_assign(&PerfExpr::var(*pcv, slope[m]));
        }
        for ((a, b), slope) in cross {
            e.add_assign(&PerfExpr::term(
                bolt_expr::Monomial::var(*a).mul(&bolt_expr::Monomial::var(*b)),
                slope[m],
            ));
        }
        e
    };
    crate::registry::CasePerf {
        instructions: build(0),
        mem_accesses: build(1),
        cycles: build(2),
    }
}

/// Register a flow-table instance: interns its PCVs, runs the automated
/// pre-analysis, and registers the resulting contract. Idempotent by
/// `name`.
pub fn register<const K: usize>(
    reg: &mut DsRegistry,
    name: &str,
    pcv_prefix: &str,
    params: FlowTableParams,
) -> FlowTableIds {
    let e = reg.pcv(pcv_prefix, "e");
    let c = reg.pcv(pcv_prefix, "c");
    let t = reg.pcv(pcv_prefix, "t");
    let o = reg.pcv(pcv_prefix, "o");
    let te = reg.pcv(pcv_prefix, "te");
    let ce = reg.pcv(pcv_prefix, "ce");
    let provisional = FlowTableIds {
        ds: DsId(u32::MAX),
        e,
        c,
        t,
        o,
        te,
        ce,
    };
    let contract = calibrate::<K>(provisional, params);
    let ds = reg.register(name, contract);
    FlowTableIds {
        ds,
        e,
        c,
        t,
        o,
        te,
        ce,
    }
}

/// Convenience: look up a case's expression.
pub fn case_of(reg: &DsRegistry, ds: DsId, method: u16, case: u16) -> &CaseContract {
    reg.resolve(StatefulCall { ds, method, case })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_expr::PcvAssignment;
    use bolt_trace::Metric;
    use bolt_trace::{CountingTracer, NullTracer};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    fn setup() -> (DsRegistry, FlowTableIds, FlowTable<3>, FlowTableParams) {
        let mut reg = DsRegistry::new();
        let params = FlowTableParams {
            capacity: 1024,
            ttl_ns: 1000,
        };
        let ids = register::<3>(&mut reg, "flow_table", "", params);
        let mut aspace = AddressSpace::new();
        let table = FlowTable::new(ids, params, &mut aspace);
        (reg, ids, table, params)
    }

    fn k3(ctx: &mut ConcreteCtx<'_>, a: u64, b: u64, c: u64) -> [bolt_see::concrete::CVal; 3] {
        [
            ctx.lit(a, Width::W64),
            ctx.lit(b, Width::W64),
            ctx.lit(c, Width::W64),
        ]
    }

    #[test]
    fn put_get_expire_semantics() {
        let (_, _, mut table, _) = setup();
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let key = k3(&mut ctx, 1, 2, 3);
        let now0 = ctx.lit(0, Width::W64);
        assert!(FlowTableOps::<_, 3>::get(&mut table, &mut ctx, &key, now0).is_none());
        let v = ctx.lit(42, Width::W64);
        assert!(FlowTableOps::<_, 3>::put(
            &mut table, &mut ctx, &key, v, now0
        ));
        assert_eq!(table.len(), 1);
        let got = FlowTableOps::<_, 3>::get(&mut table, &mut ctx, &key, now0).unwrap();
        assert_eq!(ctx.concrete_value(got), Some(42));
        // Not expired yet at ttl boundary - 1.
        let now1 = ctx.lit(999, Width::W64);
        let e = FlowTableOps::<_, 3>::expire(&mut table, &mut ctx, now1);
        assert_eq!(ctx.concrete_value(e), Some(0));
        // Expired after refresh + ttl.
        let now2 = ctx.lit(2000, Width::W64);
        let e = FlowTableOps::<_, 3>::expire(&mut table, &mut ctx, now2);
        assert_eq!(ctx.concrete_value(e), Some(1));
        assert_eq!(table.len(), 0);
        assert!(FlowTableOps::<_, 3>::get(&mut table, &mut ctx, &key, now2).is_none());
    }

    #[test]
    fn get_refreshes_age() {
        let (_, _, mut table, _) = setup();
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let ka = k3(&mut ctx, 1, 1, 1);
        let kb = k3(&mut ctx, 2, 2, 2);
        let v = ctx.lit(0, Width::W64);
        let t0 = ctx.lit(0, Width::W64);
        assert!(FlowTableOps::<_, 3>::put(&mut table, &mut ctx, &ka, v, t0));
        let t10 = ctx.lit(10, Width::W64);
        assert!(FlowTableOps::<_, 3>::put(&mut table, &mut ctx, &kb, v, t10));
        // Refresh a at t=500: now b is oldest.
        let t500 = ctx.lit(500, Width::W64);
        assert!(FlowTableOps::<_, 3>::get(&mut table, &mut ctx, &ka, t500).is_some());
        // At t=1200: only b expired (b ts=10 < 200? cutoff=1200-1000=200; a ts=500 >= 200).
        let t1200 = ctx.lit(1200, Width::W64);
        let e = FlowTableOps::<_, 3>::expire(&mut table, &mut ctx, t1200);
        assert_eq!(ctx.concrete_value(e), Some(1));
        assert!(FlowTableOps::<_, 3>::get(&mut table, &mut ctx, &ka, t1200).is_some());
        assert!(FlowTableOps::<_, 3>::get(&mut table, &mut ctx, &kb, t1200).is_none());
    }

    #[test]
    fn full_table_rejects_put() {
        let (_, ids, _, _) = setup();
        let params = FlowTableParams {
            capacity: 4,
            ttl_ns: 1000,
        };
        let mut aspace = AddressSpace::new();
        let mut table = FlowTable::<3>::new(ids, params, &mut aspace);
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let now = ctx.lit(0, Width::W64);
        for i in 0..4u64 {
            let k = k3(&mut ctx, i, i, i);
            let v = ctx.lit(i, Width::W64);
            assert!(FlowTableOps::<_, 3>::put(&mut table, &mut ctx, &k, v, now));
        }
        let k = k3(&mut ctx, 9, 9, 9);
        let v = ctx.lit(9, Width::W64);
        assert!(!FlowTableOps::<_, 3>::put(&mut table, &mut ctx, &k, v, now));
    }

    #[test]
    fn matches_hashmap_oracle_under_random_workload() {
        let (_, _, mut table, params) = setup();
        let mut oracle: HashMap<[u64; 3], (u64, u64)> = HashMap::new(); // key -> (val, ts)
        let mut rng = SmallRng::seed_from_u64(42);
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let mut now = 0u64;
        for step in 0..5000u64 {
            now += rng.gen_range(0..5);
            let nowv = ctx.lit(now, Width::W64);
            // Expire oracle first (mirrors table semantics).
            let cutoff = now.saturating_sub(params.ttl_ns);
            let e = FlowTableOps::<_, 3>::expire(&mut table, &mut ctx, nowv);
            let expired_oracle: Vec<[u64; 3]> = oracle
                .iter()
                .filter(|(_, &(_, ts))| ts < cutoff)
                .map(|(k, _)| *k)
                .collect();
            assert_eq!(
                ctx.concrete_value(e),
                Some(expired_oracle.len() as u64),
                "step {step}"
            );
            for k in expired_oracle {
                oracle.remove(&k);
            }
            // Random op.
            let kw = [
                rng.gen_range(0..16),
                rng.gen_range(0..16),
                rng.gen_range(0..16),
            ];
            let key = k3(&mut ctx, kw[0], kw[1], kw[2]);
            if rng.gen_bool(0.5) {
                let got = FlowTableOps::<_, 3>::get(&mut table, &mut ctx, &key, nowv);
                match oracle.get_mut(&kw) {
                    Some((v, ts)) => {
                        assert_eq!(ctx.concrete_value(got.unwrap()), Some(*v), "step {step}");
                        *ts = now;
                    }
                    None => assert!(got.is_none(), "step {step}"),
                }
            } else if let std::collections::hash_map::Entry::Vacant(e) = oracle.entry(kw) {
                let v = rng.gen_range(0..1000);
                let vv = ctx.lit(v, Width::W64);
                let stored = FlowTableOps::<_, 3>::put(&mut table, &mut ctx, &key, vv, nowv);
                assert!(stored);
                e.insert((v, now));
            }
            assert_eq!(table.len(), oracle.len(), "step {step}");
        }
    }

    /// The paper's central invariant: contract ≥ measured, with a small
    /// coalescing gap (§5.1: ≤7% for IC/MA).
    #[test]
    fn contract_bounds_measured_per_operation() {
        let (reg, ids, mut table, _) = setup();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut now = 0u64;
        for _ in 0..2000 {
            now += rng.gen_range(0..3);
            let kw = [
                rng.gen_range(0..32u64),
                rng.gen_range(0..8),
                rng.gen_range(0..8),
            ];
            let is_get = rng.gen_bool(0.6);
            let mut rec = RecordingTracer::new();
            let (call, probes) = {
                let mut ctx = ConcreteCtx::new(&mut rec);
                let key = k3(&mut ctx, kw[0], kw[1], kw[2]);
                let nowv = ctx.lit(now, Width::W64);
                let call = if is_get {
                    match FlowTableOps::<_, 3>::get(&mut table, &mut ctx, &key, nowv) {
                        Some(_) => StatefulCall {
                            ds: ids.ds,
                            method: M_GET,
                            case: C_HIT,
                        },
                        None => StatefulCall {
                            ds: ids.ds,
                            method: M_GET,
                            case: C_MISS,
                        },
                    }
                } else {
                    let v = ctx.lit(1, Width::W64);
                    match FlowTableOps::<_, 3>::put(&mut table, &mut ctx, &key, v, nowv) {
                        true => StatefulCall {
                            ds: ids.ds,
                            method: M_PUT,
                            case: C_STORED,
                        },
                        false => StatefulCall {
                            ds: ids.ds,
                            method: M_PUT,
                            case: C_FULL,
                        },
                    }
                };
                (call, table.last_probe)
            };
            let (ic, ma) = bolt_trace::count_ic_ma(&rec.events);
            let cyc = bolt_hw::conservative_cycles(&rec.events);
            let mut env = PcvAssignment::new();
            env.set(ids.t, probes.0).set(ids.c, probes.1);
            let case = reg.resolve(call);
            let pred_ic = case.expr(Metric::Instructions).eval(&env);
            let pred_ma = case.expr(Metric::MemAccesses).eval(&env);
            let pred_cy = case.expr(Metric::Cycles).eval(&env);
            assert!(
                pred_ic >= ic,
                "IC bound violated: {pred_ic} < {ic} ({call:?})"
            );
            assert!(
                pred_ma >= ma,
                "MA bound violated: {pred_ma} < {ma} ({call:?})"
            );
            assert!(
                pred_cy >= cyc,
                "cycle bound violated: {pred_cy} < {cyc} ({call:?})"
            );
            // Gap stays bounded (coalescing only). Collision-heavy
            // probes legitimately pay the worst-bit-pattern coalescing
            // (compare exits early, contract charges the full width), so
            // tightness is only asserted for low-collision operations;
            // the paper's ≤7% figure is at NF-path granularity with
            // realistic traffic, which the integration tests check.
            if probes.1 <= 2 {
                assert!(
                    (pred_ic - ic) as f64 <= 0.35 * pred_ic as f64 + 8.0,
                    "IC gap too large: {pred_ic} vs {ic}"
                );
            }
        }
    }

    #[test]
    fn expire_contract_bounds_mass_expiry() {
        let (reg, ids, _, _) = setup();
        let params = FlowTableParams {
            capacity: 256,
            ttl_ns: 10,
        };
        let mut aspace = AddressSpace::new();
        let mut table = FlowTable::<3>::new(ids, params, &mut aspace);
        table.synthesize_pathological(true); // uniform singleton chains
        let mut rec = RecordingTracer::new();
        let mut max_t = 0;
        let mut max_c = 0;
        let e_count = {
            let mut ctx = ConcreteCtx::new(&mut rec);
            let now = ctx.lit(u64::MAX, Width::W64);
            let e = FlowTableOps::<_, 3>::expire(&mut table, &mut ctx, now);
            ctx.concrete_value(e).unwrap()
        };
        for ev in &rec.events {
            if let bolt_trace::TraceEvent::Pcv { pcv, value } = ev {
                if *pcv == ids.te {
                    max_t = max_t.max(*value);
                }
                if *pcv == ids.ce {
                    max_c = max_c.max(*value);
                }
            }
        }
        assert_eq!(e_count, 256);
        let (ic, ma) = bolt_trace::count_ic_ma(&rec.events);
        let mut env = PcvAssignment::new();
        env.set(ids.e, e_count)
            .set(ids.te, max_t)
            .set(ids.ce, max_c);
        let case = case_of(&reg, ids.ds, M_EXPIRE, 0);
        let pred = case.expr(Metric::Instructions).eval(&env);
        let pred_ma = case.expr(Metric::MemAccesses).eval(&env);
        assert!(pred >= ic, "mass expiry IC bound violated: {pred} < {ic}");
        assert!(pred_ma >= ma);
        // Uniform clusters keep the product-form bound tight.
        assert!(
            (pred - ic) as f64 <= 0.10 * pred as f64,
            "uniform mass-expiry gap too large: {pred} vs {ic}"
        );
    }

    #[test]
    fn adversarial_single_chain_blows_up_quadratically() {
        let (_, ids, _, _) = setup();
        let cost_of = |cap: usize| {
            let params = FlowTableParams {
                capacity: cap,
                ttl_ns: 10,
            };
            let mut aspace = AddressSpace::new();
            let mut table = FlowTable::<3>::new(ids, params, &mut aspace);
            table.synthesize_pathological(false); // one giant probe run
            let mut t = CountingTracer::new();
            {
                let mut ctx = ConcreteCtx::new(&mut t);
                let now = ctx.lit(u64::MAX, Width::W64);
                let _ = FlowTableOps::<_, 3>::expire(&mut table, &mut ctx, now);
            }
            t.instructions
        };
        let c64 = cost_of(64);
        let c256 = cost_of(256);
        // Quadratic growth: 4× entries ⇒ ~16× instructions.
        let ratio = c256 as f64 / c64 as f64;
        assert!(
            ratio > 8.0,
            "expected superlinear mass-expiry blow-up, got {ratio:.1}"
        );
    }

    #[test]
    fn rehash_preserves_entries_and_changes_seed() {
        let (_, _, mut table, _) = setup();
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let now = ctx.lit(0, Width::W64);
        for i in 0..50u64 {
            let k = k3(&mut ctx, i, 0, 0);
            let v = ctx.lit(i * 10, Width::W64);
            assert!(FlowTableOps::<_, 3>::put(&mut table, &mut ctx, &k, v, now));
        }
        let old_seed = table.seed();
        table.rehash(&mut ctx, 0xDEAD_BEEF);
        assert_ne!(table.seed(), old_seed);
        assert_eq!(table.len(), 50);
        for i in 0..50u64 {
            let k = k3(&mut ctx, i, 0, 0);
            let got = FlowTableOps::<_, 3>::get(&mut table, &mut ctx, &k, now).unwrap();
            assert_eq!(ctx.concrete_value(got), Some(i * 10));
        }
    }

    #[test]
    fn model_forks_hit_and_miss() {
        let mut reg = DsRegistry::new();
        let params = FlowTableParams {
            capacity: 64,
            ttl_ns: 100,
        };
        let ids = register::<1>(&mut reg, "t", "", params);
        let result = bolt_see::Explorer::new().explore(|ctx| {
            let mut model = FlowTableModel::new(ids, params);
            let pkt = ctx.packet(64);
            let f = ctx.load(pkt, 0, 8);
            let now = ctx.lit(0, Width::W64);
            match FlowTableOps::<_, 1>::get(&mut model, ctx, &[f], now) {
                Some(_) => ctx.tag("hit"),
                None => ctx.tag("miss"),
            }
        });
        assert_eq!(result.paths.len(), 2);
        assert_eq!(result.tagged("hit").count(), 1);
        assert_eq!(result.tagged("miss").count(), 1);
        // Each path carries exactly one stateful call with the right case.
        for p in &result.paths {
            let calls: Vec<_> = p
                .events
                .iter()
                .filter_map(|e| match e {
                    bolt_trace::TraceEvent::Stateful(c) => Some(*c),
                    _ => None,
                })
                .collect();
            assert_eq!(calls.len(), 1);
            let want = if p.has_tag("hit") { C_HIT } else { C_MISS };
            assert_eq!(calls[0].case, want);
            assert_eq!(calls[0].method, M_GET);
        }
    }

    #[test]
    fn calibration_is_deterministic() {
        let mut reg1 = DsRegistry::new();
        let mut reg2 = DsRegistry::new();
        let params = FlowTableParams {
            capacity: 512,
            ttl_ns: 99,
        };
        let a = register::<2>(&mut reg1, "x", "", params);
        let b = register::<2>(&mut reg2, "x", "", params);
        let ca = case_of(&reg1, a.ds, M_GET, C_HIT);
        let cb = case_of(&reg2, b.ds, M_GET, C_HIT);
        assert_eq!(
            format!("{}", ca.expr(Metric::Instructions).display(&reg1.pcvs)),
            format!("{}", cb.expr(Metric::Instructions).display(&reg2.pcvs))
        );
    }

    #[test]
    fn contract_has_paper_shape() {
        let (reg, ids, _, _) = setup();
        // get-hit: linear in t and c with a constant.
        let hit = case_of(&reg, ids.ds, M_GET, C_HIT);
        let expr = hit.expr(Metric::Instructions);
        assert_eq!(expr.degree(), 1);
        assert!(expr.coeff(&bolt_expr::Monomial::var(ids.t)) > 0);
        assert!(expr.coeff(&bolt_expr::Monomial::var(ids.c)) > 0);
        assert!(expr.constant_term() > 0);
        // expire: cross terms e·t and e·c (Table 6 shape).
        let exp = case_of(&reg, ids.ds, M_EXPIRE, 0);
        let expr = exp.expr(Metric::Instructions);
        assert_eq!(expr.degree(), 2);
        let et = bolt_expr::Monomial::var(ids.e).mul(&bolt_expr::Monomial::var(ids.te));
        let ec = bolt_expr::Monomial::var(ids.e).mul(&bolt_expr::Monomial::var(ids.ce));
        assert!(expr.coeff(&et) > 0, "missing e·te term");
        assert!(expr.coeff(&ec) > 0, "missing e·ce term");
    }
}
