//! The on-disk record store.
//!
//! One directory, one file per record, addressed by content fingerprint:
//!
//! ```text
//! <dir>/<fingerprint:032x>.<kind>.bolt
//! ```
//!
//! Each file is `header ‖ payload`. The header carries a magic number,
//! the store format version, the record kind and stack-level tag, the
//! fingerprint (so a renamed file cannot impersonate another key), the
//! NF name and path count (for `list` without decoding payloads), and an
//! FNV-1a-64 checksum of the payload. [`ContractStore::get`] re-verifies
//! all of it; anything that does not check out — wrong magic, skewed
//! version, fingerprint mismatch, bad checksum, truncation — is treated
//! as a miss, never returned. Writes go through a temp file + rename so
//! a crashed writer can not leave a half-record under a valid name.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::fingerprint::{fnv64, Fingerprint, STORE_FORMAT_VERSION};
use crate::wire::{ByteReader, ByteWriter, DecodeError};

/// Record file magic.
const MAGIC: &[u8; 4] = b"BLTS";

/// What a record's payload encodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RecordKind {
    /// An encoded `ExplorationResult` (pool + feasible paths + stats).
    Exploration,
    /// An encoded `NfContract` (pool + per-path cost polynomials).
    Contract,
}

impl RecordKind {
    fn tag(self) -> u8 {
        match self {
            RecordKind::Exploration => 0,
            RecordKind::Contract => 1,
        }
    }

    fn from_tag(t: u8) -> Result<Self, DecodeError> {
        match t {
            0 => Ok(RecordKind::Exploration),
            1 => Ok(RecordKind::Contract),
            _ => Err(DecodeError::Malformed("record kind out of range")),
        }
    }

    fn file_tag(self) -> &'static str {
        match self {
            RecordKind::Exploration => "exp",
            RecordKind::Contract => "ctr",
        }
    }
}

/// Header metadata of one stored record (everything `list` shows).
#[derive(Clone, Debug)]
pub struct StoreEntry {
    /// The record's addressing key.
    pub fingerprint: Fingerprint,
    /// What the payload encodes.
    pub kind: RecordKind,
    /// NF name the record was derived from.
    pub nf_name: String,
    /// Stack-level tag (0 = NF-only, 1 = full-stack; `bolt_core` owns
    /// the mapping — the store stays NF-framework-agnostic).
    pub level: u8,
    /// Number of feasible paths in the payload.
    pub n_paths: u64,
    /// Encoded payload size in bytes.
    pub payload_len: u64,
}

/// The persistent contract store: a directory of checksummed,
/// fingerprint-addressed records.
#[derive(Debug)]
pub struct ContractStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ContractStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ContractStore {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records served from disk since `open`.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found no usable record since `open`.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn path_of(&self, fp: Fingerprint, kind: RecordKind) -> PathBuf {
        self.dir.join(format!("{fp}.{}.bolt", kind.file_tag()))
    }

    /// Fetch a record's payload, fully verified. Any defect — missing
    /// file, bad magic, version skew, fingerprint or kind mismatch,
    /// checksum failure, truncation — is a miss.
    pub fn get(&self, fp: Fingerprint, kind: RecordKind) -> Option<Vec<u8>> {
        let res = fs::read(self.path_of(fp, kind)).ok().and_then(|bytes| {
            verify_record(&bytes, Some(fp), Some(kind))
                .ok()
                .map(|(_, payload)| payload.to_vec())
        });
        match res {
            Some(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Write a record (atomically: temp file + rename). Overwrites any
    /// existing record under the same key.
    pub fn put(
        &self,
        fp: Fingerprint,
        kind: RecordKind,
        nf_name: &str,
        level: u8,
        n_paths: u64,
        payload: &[u8],
    ) -> io::Result<()> {
        let mut w = ByteWriter::new();
        w.raw(MAGIC);
        w.u16(STORE_FORMAT_VERSION);
        w.u8(kind.tag());
        w.u8(level);
        w.u128(fp.0);
        w.str(nf_name);
        w.varint(n_paths);
        w.u64(fnv64(payload));
        w.bytes(payload);
        let final_path = self.path_of(fp, kind);
        let tmp = self.dir.join(format!(
            ".{fp}.{}.tmp.{}",
            kind.file_tag(),
            std::process::id()
        ));
        fs::write(&tmp, w.into_bytes())?;
        fs::rename(&tmp, &final_path)
    }

    /// Header metadata of every readable record, sorted by NF name then
    /// level then kind. Unreadable files are skipped, not fatal.
    pub fn list(&self) -> io::Result<Vec<StoreEntry>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("bolt") {
                continue;
            }
            let Ok(bytes) = fs::read(&path) else {
                continue;
            };
            if let Ok((meta, _)) = verify_record(&bytes, None, None) {
                out.push(meta);
            }
        }
        out.sort_by(|a, b| {
            (&a.nf_name, a.level, a.kind.tag()).cmp(&(&b.nf_name, b.level, b.kind.tag()))
        });
        Ok(out)
    }

    /// Remove a record. Returns whether one existed.
    pub fn evict(&self, fp: Fingerprint, kind: RecordKind) -> io::Result<bool> {
        match fs::remove_file(self.path_of(fp, kind)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }
}

/// Parse and verify a record file. `expect_fp`/`expect_kind` of `None`
/// accept any (used by `list`, which reads whatever the directory
/// holds).
fn verify_record(
    bytes: &[u8],
    expect_fp: Option<Fingerprint>,
    expect_kind: Option<RecordKind>,
) -> Result<(StoreEntry, &[u8]), DecodeError> {
    let mut r = ByteReader::new(bytes);
    if r.raw(4)? != MAGIC {
        return Err(DecodeError::Malformed("bad magic"));
    }
    if r.u16()? != STORE_FORMAT_VERSION {
        return Err(DecodeError::Malformed("store format version mismatch"));
    }
    let kind = RecordKind::from_tag(r.u8()?)?;
    if expect_kind.is_some_and(|k| k != kind) {
        return Err(DecodeError::Malformed("record kind mismatch"));
    }
    let level = r.u8()?;
    let fp = Fingerprint(r.u128()?);
    if expect_fp.is_some_and(|e| e != fp) {
        return Err(DecodeError::Malformed("fingerprint mismatch"));
    }
    let nf_name = r.str()?.to_owned();
    let n_paths = r.varint()?;
    let checksum = r.u64()?;
    let payload = r.bytes()?;
    r.expect_end()?;
    if fnv64(payload) != checksum {
        return Err(DecodeError::Malformed("payload checksum mismatch"));
    }
    Ok((
        StoreEntry {
            fingerprint: fp,
            kind,
            nf_name,
            level,
            n_paths,
            payload_len: payload.len() as u64,
        },
        payload,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ContractStore {
        let dir =
            std::env::temp_dir().join(format!("bolt-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ContractStore::open(dir).unwrap()
    }

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n)
    }

    #[test]
    fn put_get_list_evict() {
        let store = temp_store("basic");
        let payload = b"not a real exploration, but faithful bytes".to_vec();
        store
            .put(fp(7), RecordKind::Exploration, "bridge", 1, 9, &payload)
            .unwrap();
        assert_eq!(
            store.get(fp(7), RecordKind::Exploration).as_deref(),
            Some(payload.as_slice())
        );
        assert_eq!(store.hits(), 1);
        // Same key, different kind: distinct record slot.
        assert!(store.get(fp(7), RecordKind::Contract).is_none());
        assert_eq!(store.misses(), 1);
        let entries = store.list().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].nf_name, "bridge");
        assert_eq!(entries[0].n_paths, 9);
        assert_eq!(entries[0].level, 1);
        assert_eq!(entries[0].payload_len, payload.len() as u64);
        assert!(store.evict(fp(7), RecordKind::Exploration).unwrap());
        assert!(!store.evict(fp(7), RecordKind::Exploration).unwrap());
        assert!(store.get(fp(7), RecordKind::Exploration).is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_records_are_misses() {
        let store = temp_store("corrupt");
        store
            .put(fp(1), RecordKind::Exploration, "nat", 0, 8, b"payload!")
            .unwrap();
        let path = store.path_of(fp(1), RecordKind::Exploration);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte: checksum must catch it.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(store.get(fp(1), RecordKind::Exploration).is_none());
        // Truncated file.
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(store.get(fp(1), RecordKind::Exploration).is_none());
        // list() must skip it rather than fail.
        assert!(store.list().unwrap().is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn version_skew_is_rejected() {
        let store = temp_store("version");
        store
            .put(fp(2), RecordKind::Contract, "lb", 1, 8, b"vvv")
            .unwrap();
        let path = store.path_of(fp(2), RecordKind::Contract);
        let mut bytes = fs::read(&path).unwrap();
        // Bump the version field (offset 4, after the magic).
        bytes[4] = bytes[4].wrapping_add(1);
        fs::write(&path, &bytes).unwrap();
        assert!(store.get(fp(2), RecordKind::Contract).is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn renamed_records_cannot_impersonate() {
        let store = temp_store("rename");
        store
            .put(fp(3), RecordKind::Exploration, "lpm", 0, 4, b"abc")
            .unwrap();
        // Copy record 3's bytes under key 4's file name.
        let from = store.path_of(fp(3), RecordKind::Exploration);
        let to = store.path_of(fp(4), RecordKind::Exploration);
        fs::copy(&from, &to).unwrap();
        assert!(
            store.get(fp(4), RecordKind::Exploration).is_none(),
            "embedded fingerprint must veto the file name"
        );
        assert!(store.get(fp(3), RecordKind::Exploration).is_some());
        let _ = fs::remove_dir_all(store.dir());
    }
}
