//! The on-disk record store.
//!
//! One directory, one file per record, addressed by content fingerprint:
//!
//! ```text
//! <dir>/<fingerprint:032x>.<kind>.bolt
//! ```
//!
//! Each file is `header ‖ payload`. The header carries a magic number,
//! the store format version, the record kind and stack-level tag, the
//! fingerprint (so a renamed file cannot impersonate another key), a
//! last-used stamp (bumped in place by [`ContractStore::get`] and
//! [`ContractStore::touch`], the food of [`ContractStore::sweep`]'s LRU
//! ordering), the NF name and path count, and an FNV-1a-64 checksum of
//! the payload.
//!
//! The format splits into two decode passes with different costs:
//! [`RecordHeader`] (everything before the payload, plus the payload's
//! length prefix) decodes from a small bounded read — this is what
//! [`ContractStore::list`], [`ContractStore::header`], and cache
//! admission decisions use — while the payload itself (the expensive
//! part: rehydrating a whole term pool) is only read and checksummed by
//! [`ContractStore::get`], i.e. lazily, when something actually needs
//! the record's contents. [`ContractStore::get`] re-verifies everything;
//! anything that does not check out — wrong magic, skewed version,
//! fingerprint mismatch, bad checksum, truncation — is treated as a
//! miss, never returned. Writes go through a temp file + rename so a
//! crashed writer can not leave a half-record under a valid name.

use std::fs;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use bolt_fault::{site, FaultPlan};
use bolt_obs::{trace, Counter, Histogram, Registry};

use crate::fingerprint::{fnv64, Fingerprint, STORE_FORMAT_VERSION};
use crate::wire::{ByteReader, ByteWriter, DecodeError};

/// Record file magic.
const MAGIC: &[u8; 4] = b"BLTS";

/// Byte offset of the last-used stamp within a record file. Fixed (it
/// sits before any variable-length field) so `get` can bump it with one
/// in-place 8-byte write instead of rewriting the record:
/// magic (4) + version (2) + kind (1) + level (1) + fingerprint (16).
const STAMP_OFFSET: u64 = 24;

/// A fresh last-used stamp: microseconds since the Unix epoch, forced
/// strictly monotone within this process so that same-instant accesses
/// still produce a total LRU order (what the sweep tests — and any
/// single-host workflow — rely on).
fn next_stamp() -> u64 {
    static LAST: AtomicU64 = AtomicU64::new(0);
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut prev = LAST.load(Ordering::Relaxed);
    loop {
        let next = now.max(prev + 1);
        match LAST.compare_exchange_weak(prev, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return next,
            Err(p) => prev = p,
        }
    }
}

/// What a record's payload encodes.
///
/// `Composed` and `Plan` were added within store-format version 2: each
/// introduces a new tag without changing the payload layout of the
/// existing kinds, so pre-existing stores stay readable and old binaries
/// simply reject the unknown tag (a miss, swept first under disk
/// pressure).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RecordKind {
    /// An encoded `ExplorationResult` (pool + feasible paths + stats).
    Exploration,
    /// An encoded `NfContract` (pool + per-path cost polynomials).
    Contract,
    /// An encoded composed-chain `NfContract`, keyed by the fingerprints
    /// of the two contracts it was composed from.
    Composed,
    /// An encoded chain parallelization plan (`ChainPlan`): groups of
    /// provably order-independent stages plus commutativity witnesses,
    /// keyed by the fingerprints of every stage in the chain.
    Plan,
}

impl RecordKind {
    fn tag(self) -> u8 {
        match self {
            RecordKind::Exploration => 0,
            RecordKind::Contract => 1,
            RecordKind::Composed => 2,
            RecordKind::Plan => 3,
        }
    }

    fn from_tag(t: u8) -> Result<Self, DecodeError> {
        match t {
            0 => Ok(RecordKind::Exploration),
            1 => Ok(RecordKind::Contract),
            2 => Ok(RecordKind::Composed),
            3 => Ok(RecordKind::Plan),
            _ => Err(DecodeError::Malformed("record kind out of range")),
        }
    }

    fn file_tag(self) -> &'static str {
        match self {
            RecordKind::Exploration => "exp",
            RecordKind::Contract => "ctr",
            RecordKind::Composed => "cmp",
            RecordKind::Plan => "pln",
        }
    }
}

/// Header metadata of one stored record, decodable *without* touching
/// the payload (no checksum pass, no pool rehydration). This is the
/// cheap half of the record format: `list`, sweep accounting, and a
/// serving cache's admission decisions all read only this; the payload
/// decode — the expensive re-interning of a whole term pool — is
/// deferred to the first actual use of the record's contents.
#[derive(Clone, Debug)]
pub struct RecordHeader {
    /// The record's addressing key.
    pub fingerprint: Fingerprint,
    /// What the payload encodes.
    pub kind: RecordKind,
    /// NF name the record was derived from.
    pub nf_name: String,
    /// Stack-level tag (0 = NF-only, 1 = full-stack; `bolt_core` owns
    /// the mapping — the store stays NF-framework-agnostic).
    pub level: u8,
    /// Last-used stamp (µs since the Unix epoch): set at `put`, bumped
    /// in place by every verified `get` (and batched
    /// [`ContractStore::touch`] calls). Drives LRU sweep ordering.
    pub last_used: u64,
    /// Number of feasible paths in the payload.
    pub n_paths: u64,
    /// Encoded payload size in bytes.
    pub payload_len: u64,
    /// FNV-1a-64 checksum the payload must hash to (verified by
    /// [`ContractStore::get`], not by header-only reads).
    pub checksum: u64,
    /// Bytes the header itself occupies; the payload starts here.
    pub header_len: u64,
}

/// What `list` returns per record: the header is the metadata.
pub type StoreEntry = RecordHeader;

/// Upper bound on the encoded header (magic through payload-length
/// prefix). Generous: the only variable-size field is the NF/chain name.
const HEADER_PREFIX_MAX: usize = 4096;

/// Decode a record's header from a byte prefix (the payload need not be
/// present). Validates magic, version, and kind, but *not* the payload
/// checksum — that is [`ContractStore::get`]'s job.
fn decode_header(bytes: &[u8]) -> Result<RecordHeader, DecodeError> {
    let mut r = ByteReader::new(bytes);
    if r.raw(4)? != MAGIC {
        return Err(DecodeError::Malformed("bad magic"));
    }
    if r.u16()? != STORE_FORMAT_VERSION {
        return Err(DecodeError::Malformed("store format version mismatch"));
    }
    let kind = RecordKind::from_tag(r.u8()?)?;
    let level = r.u8()?;
    let fingerprint = Fingerprint(r.u128()?);
    let last_used = r.u64()?;
    let nf_name = r.str()?.to_owned();
    let n_paths = r.varint()?;
    let checksum = r.u64()?;
    // The payload's length prefix, read without requiring the payload
    // bytes themselves (this is what makes the header pass cheap).
    let payload_len = r.varint()?;
    let header_len = (bytes.len() - r.remaining()) as u64;
    Ok(RecordHeader {
        fingerprint,
        kind,
        nf_name,
        level,
        last_used,
        n_paths,
        payload_len,
        checksum,
        header_len,
    })
}

/// Header-only read of a record file: one bounded `read` of the header
/// prefix plus a `stat`, never the payload. The file's size must equal
/// `header_len + payload_len` exactly — a cheap truncation/garbage check
/// that costs no payload I/O.
fn read_header(path: &Path) -> Option<RecordHeader> {
    use std::io::Read;
    let mut f = fs::File::open(path).ok()?;
    let mut prefix = Vec::with_capacity(512);
    std::io::Read::by_ref(&mut f)
        .take(HEADER_PREFIX_MAX as u64)
        .read_to_end(&mut prefix)
        .ok()?;
    let hdr = decode_header(&prefix).ok()?;
    let file_len = f.metadata().ok()?.len();
    if hdr.header_len + hdr.payload_len != file_len {
        return None;
    }
    Some(hdr)
}

/// What one [`ContractStore::sweep`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Records kept (within the budget, most recently used first).
    pub kept: usize,
    /// Records evicted.
    pub evicted: usize,
    /// On-disk bytes of the kept records.
    pub kept_bytes: u64,
    /// On-disk bytes reclaimed.
    pub evicted_bytes: u64,
}

/// The persistent contract store: a directory of checksummed,
/// fingerprint-addressed records.
///
/// Every store carries a [`bolt_obs::Registry`] (its own by default, so
/// two stores in one process keep isolated numbers): `store.hits` /
/// `store.misses` / `store.quarantined` counters plus `store.get` /
/// `store.put` latency histograms. A host that wants the store's series
/// in *its* registry — the serve core does — rebinds with
/// [`ContractStore::with_metrics`]. Quarantine, corruption, and heal
/// events additionally land in the ambient `BOLT_TRACE` sink.
#[derive(Debug)]
pub struct ContractStore {
    dir: PathBuf,
    quarantined: u64,
    fault: Option<Arc<FaultPlan>>,
    metrics: Arc<Registry>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    h_get: Arc<Histogram>,
    h_put: Arc<Histogram>,
}

impl ContractStore {
    /// Open (creating if needed) a store rooted at `dir`. Picks up the
    /// ambient fault plan, if any (see [`bolt_fault::ambient`]); tests
    /// that want an explicit plan use [`ContractStore::with_faults`].
    ///
    /// Opening also heals crash debris: any `.tmp.` scratch file a dead
    /// writer left behind (a process killed between write and rename)
    /// is quarantined — removed, counted in
    /// [`ContractStore::quarantined`] — so a crashed predecessor can
    /// neither leak disk forever nor be mistaken for a record. Torn
    /// *records* need no scan here: every read path re-verifies sizes
    /// and checksums and treats damage as a miss, which the next `put`
    /// overwrites.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::with_faults(dir, bolt_fault::ambient().cloned())
    }

    /// [`ContractStore::open`] under an explicit fault plan (`None`
    /// disables injection regardless of the environment).
    pub fn with_faults(dir: impl Into<PathBuf>, fault: Option<Arc<FaultPlan>>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut quarantined = 0;
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            // Writers name scratch files `.<fp>.<kind>.tmp.<pid>.<n>`;
            // anything matching that shape is a dead writer's leavings
            // (live writers hold theirs for microseconds between write
            // and rename — and a concurrently vanished file is fine).
            if name.starts_with('.') && name.contains(".tmp.") && path.is_file() {
                match fs::remove_file(&path) {
                    Ok(()) => {
                        quarantined += 1;
                        trace::emit("store.quarantine", &[("file", name.into())]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
        }
        let metrics = Arc::new(Registry::new());
        let store = ContractStore {
            dir,
            quarantined,
            fault,
            hits: metrics.counter("store.hits"),
            misses: metrics.counter("store.misses"),
            h_get: metrics.histogram("store.get"),
            h_put: metrics.histogram("store.put"),
            metrics,
        };
        store.metrics.counter("store.quarantined").add(quarantined);
        Ok(store)
    }

    /// Rebind the store's metric series into `metrics` (get-or-create by
    /// name), carrying already-accumulated values over. A server that owns
    /// a registry calls this so one snapshot covers serve and store.
    pub fn with_metrics(mut self, metrics: Arc<Registry>) -> Self {
        let hits = metrics.counter("store.hits");
        hits.add(self.hits.get());
        let misses = metrics.counter("store.misses");
        misses.add(self.misses.get());
        metrics.counter("store.quarantined").add(self.quarantined);
        self.hits = hits;
        self.misses = misses;
        self.h_get = metrics.histogram("store.get");
        self.h_put = metrics.histogram("store.put");
        self.metrics = metrics;
        self
    }

    /// The registry holding the store's counters and latency histograms.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Orphaned temp files removed by [`ContractStore::open`].
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records served from disk since `open`.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that found no usable record since `open`.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    fn path_of(&self, fp: Fingerprint, kind: RecordKind) -> PathBuf {
        self.dir.join(format!("{fp}.{}.bolt", kind.file_tag()))
    }

    /// Fetch a record's payload, fully verified. Any defect — missing
    /// file, bad magic, version skew, fingerprint or kind mismatch,
    /// checksum failure, truncation — is a miss. A verified hit bumps
    /// the record's last-used stamp in place (LRU food for
    /// [`ContractStore::sweep`]); a failed bump is ignored — it only
    /// ages the record's sweep priority, never the payload.
    pub fn get(&self, fp: Fingerprint, kind: RecordKind) -> Option<Vec<u8>> {
        let _span = self.h_get.span();
        let path = self.path_of(fp, kind);
        // Injected read failure: the same shape as a vanished or
        // unreadable file — a miss the caller re-derives and re-puts.
        if self
            .fault
            .as_deref()
            .is_some_and(|f| f.fires(site::STORE_READ))
        {
            self.misses.inc();
            return None;
        }
        let bytes = fs::read(&path).ok();
        let present = bytes.is_some();
        let res = bytes.and_then(|bytes| {
            verify_record(&bytes, Some(fp), Some(kind))
                .ok()
                .map(|(_, payload)| payload.to_vec())
        });
        match res {
            Some(payload) => {
                self.hits.inc();
                let _ = bump_stamp(&path);
                Some(payload)
            }
            None => {
                self.misses.inc();
                if present {
                    // The file was there but failed verification — damage
                    // the next put of this key will heal.
                    trace::emit(
                        "store.corrupt",
                        &[
                            ("fp", format!("{fp}").as_str().into()),
                            ("kind", kind.file_tag().into()),
                        ],
                    );
                }
                None
            }
        }
    }

    /// Write a record (atomically: unique temp file + fsync + rename).
    /// Overwrites any existing record under the same key.
    ///
    /// Crash-consistency contract: the final path only ever holds a
    /// complete, fsynced record (rename is atomic and the temp file is
    /// durable first), so a reader can never observe a torn record under
    /// a valid name no matter where the writer dies. Temp names carry
    /// the pid *and* a process-global counter, so concurrent writers of
    /// the same key — two server threads exploring the same NF, say —
    /// cannot stomp each other's scratch bytes; last rename wins, and
    /// both renames carry complete records. A failed write cleans its
    /// temp file up; a *crashed* one (simulated by the
    /// `store.write.partial` / `store.rename` fault sites) leaves it for
    /// [`ContractStore::open`] to quarantine.
    pub fn put(
        &self,
        fp: Fingerprint,
        kind: RecordKind,
        nf_name: &str,
        level: u8,
        n_paths: u64,
        payload: &[u8],
    ) -> io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let _span = self.h_put.span();
        let mut w = ByteWriter::new();
        w.raw(MAGIC);
        w.u16(STORE_FORMAT_VERSION);
        w.u8(kind.tag());
        w.u8(level);
        w.u128(fp.0);
        w.u64(next_stamp());
        w.str(nf_name);
        w.varint(n_paths);
        w.u64(fnv64(payload));
        w.bytes(payload);
        let bytes = w.into_bytes();
        let final_path = self.path_of(fp, kind);
        let tmp = self.dir.join(format!(
            ".{fp}.{}.tmp.{}.{}",
            kind.file_tag(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let fault = self.fault.as_deref();
        // A simulated crash mid-write: half the bytes land in the temp
        // file and the writer "dies" — the torn scratch file stays
        // behind, exactly what a real kill -9 leaves. open() quarantines
        // it; no reader ever sees it (the final path is untouched).
        if let Some(e) = fault.and_then(|f| f.io_fault(site::STORE_WRITE_PARTIAL, "torn write")) {
            let _ = fs::write(&tmp, &bytes[..bytes.len() / 2]);
            return Err(e);
        }
        let res = (|| {
            if let Some(e) = fault.and_then(|f| f.io_fault(site::STORE_WRITE, "write failed")) {
                return Err(e);
            }
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            if let Some(e) = fault.and_then(|f| f.io_fault(site::STORE_FSYNC, "fsync failed")) {
                return Err(e);
            }
            // Durability before visibility: the record must be on disk
            // before the rename can expose it under a valid name.
            f.sync_all()
        })();
        if let Err(e) = res {
            // An honest write failure (ENOSPC and kin): clean up the
            // scratch file, keep the store exactly as it was.
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        // A simulated crash between write and rename: the complete temp
        // file is orphaned (open() quarantines it later).
        if let Some(e) = fault.and_then(|f| f.io_fault(site::STORE_RENAME, "crash before rename")) {
            return Err(e);
        }
        // A put that replaces a header-skewed record is a heal — worth a
        // trace line (the cheap stamp probe only runs when tracing is on).
        if trace::enabled() && final_path.exists() && read_stamp(&final_path).is_none() {
            trace::emit(
                "store.heal",
                &[
                    ("fp", format!("{fp}").as_str().into()),
                    ("kind", kind.file_tag().into()),
                ],
            );
        }
        match fs::rename(&tmp, &final_path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Header metadata of every readable record, sorted by NF name then
    /// level then kind. Unreadable files are skipped, not fatal.
    ///
    /// This is a pure header pass: one bounded read per file, no payload
    /// I/O, no checksum, no pool rehydration — enumerating a store of
    /// gigabytes costs kilobytes of reads. A record whose payload bytes
    /// are corrupt (but whose header parses and whose file size matches)
    /// still lists — it occupies disk and participates in sweep budgets;
    /// payload integrity is [`ContractStore::get`]'s job.
    pub fn list(&self) -> io::Result<Vec<StoreEntry>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("bolt") {
                continue;
            }
            if let Some(meta) = read_header(&path) {
                out.push(meta);
            }
        }
        out.sort_by(|a, b| {
            (&a.nf_name, a.level, a.kind.tag()).cmp(&(&b.nf_name, b.level, b.kind.tag()))
        });
        Ok(out)
    }

    /// Header-only metadata of one record: fingerprint, kind, level,
    /// name, path count, sizes, and last-used stamp — without reading
    /// (let alone decoding) the payload. `None` when the record is
    /// missing, format-skewed, size-inconsistent, or keyed differently
    /// than its file name claims. This is what `list`-style enumeration
    /// and cache admission decisions should use; only an actual payload
    /// consumer needs [`ContractStore::get`].
    pub fn header(&self, fp: Fingerprint, kind: RecordKind) -> Option<RecordHeader> {
        let hdr = read_header(&self.path_of(fp, kind))?;
        (hdr.fingerprint == fp && hdr.kind == kind).then_some(hdr)
    }

    /// Bump a record's last-used stamp in place without reading its
    /// payload — the batched "this record is hot" signal a long-lived
    /// server sends so that an on-disk [`ContractStore::sweep`] and the
    /// server's in-memory cache agree on MRU order. Returns whether a
    /// valid record was stamped (`false` for missing or format-skewed
    /// files — never an error for those, since the caller's cache entry
    /// remains correct either way).
    pub fn touch(&self, fp: Fingerprint, kind: RecordKind) -> io::Result<bool> {
        let path = self.path_of(fp, kind);
        if read_stamp(&path).is_none() {
            return Ok(false);
        }
        match bump_stamp(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Remove a record. Returns whether one existed.
    pub fn evict(&self, fp: Fingerprint, kind: RecordKind) -> io::Result<bool> {
        match fs::remove_file(self.path_of(fp, kind)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// LRU sweep: evict least-recently-used records until the store's
    /// records fit in `max_bytes` of disk (whole files, header
    /// included). Most recently used records are kept first; a record
    /// that would push the running total past the budget is evicted
    /// even if a smaller, older one would still fit — the kept set is
    /// exactly the MRU prefix that fits, so the budget is never
    /// exceeded.
    ///
    /// Ranking reads only each record's fixed-size header prefix (one
    /// small read per file, O(records) — not the payloads, which would
    /// make every sweep O(store bytes)); payload integrity is `get`'s
    /// job, and a checksum-corrupt record still occupies disk, so it
    /// participates in the budget like any other. `.bolt` files whose
    /// prefix does not parse — truncated garbage, records from an
    /// older store format (whose keys nothing addresses any more) —
    /// rank as least recently used, so they are the first evicted
    /// under pressure instead of leaking disk forever. A record
    /// another process removed mid-sweep counts as evicted, not as an
    /// error.
    pub fn sweep(&self, max_bytes: u64) -> io::Result<SweepReport> {
        let mut records: Vec<(u64, u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("bolt") {
                continue;
            }
            // Unparseable prefix → stamp 0: dead weight, evicted first.
            let stamp = read_stamp(&path).unwrap_or(0);
            let Ok(meta) = entry.metadata() else {
                continue;
            };
            records.push((stamp, meta.len(), path));
        }
        // MRU first; stamps are unique within a process, and the path
        // tie-break keeps cross-process collisions deterministic.
        records.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.2.cmp(&b.2)));
        let mut report = SweepReport::default();
        let mut first_err = None;
        for (_, size, path) in records {
            if report.kept_bytes + size <= max_bytes {
                report.kept += 1;
                report.kept_bytes += size;
                continue;
            }
            match fs::remove_file(&path) {
                Ok(()) => {
                    report.evicted += 1;
                    report.evicted_bytes += size;
                }
                // Already gone (a concurrent sweep or evict won the
                // race): the goal state, count it evicted.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    report.evicted += 1;
                    report.evicted_bytes += size;
                }
                Err(e) => {
                    // Keep sweeping what we can; report the first
                    // failure after the pass completes.
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }
}

/// Read the last-used stamp and validate the fixed-size header prefix
/// (magic, version, kind) of a record file, without touching the
/// payload. `None` when the prefix is missing, short, or skewed.
fn read_stamp(path: &Path) -> Option<u64> {
    use std::io::Read;
    let mut prefix = [0u8; STAMP_OFFSET as usize + 8];
    let mut f = fs::File::open(path).ok()?;
    f.read_exact(&mut prefix).ok()?;
    let mut r = ByteReader::new(&prefix);
    if r.raw(4).ok()? != MAGIC || r.u16().ok()? != STORE_FORMAT_VERSION {
        return None;
    }
    RecordKind::from_tag(r.u8().ok()?).ok()?;
    let _level = r.u8().ok()?;
    let _fp = r.u128().ok()?;
    r.u64().ok()
}

/// Bump a record's last-used stamp in place (8-byte write at the fixed
/// header offset).
fn bump_stamp(path: &Path) -> io::Result<()> {
    let mut f = fs::OpenOptions::new().write(true).open(path)?;
    f.seek(SeekFrom::Start(STAMP_OFFSET))?;
    f.write_all(&next_stamp().to_le_bytes())
}

/// Parse and verify a record file. `expect_fp`/`expect_kind` of `None`
/// accept any (used by `list`, which reads whatever the directory
/// holds).
fn verify_record(
    bytes: &[u8],
    expect_fp: Option<Fingerprint>,
    expect_kind: Option<RecordKind>,
) -> Result<(RecordHeader, &[u8]), DecodeError> {
    let hdr = decode_header(bytes)?;
    if expect_kind.is_some_and(|k| k != hdr.kind) {
        return Err(DecodeError::Malformed("record kind mismatch"));
    }
    if expect_fp.is_some_and(|e| e != hdr.fingerprint) {
        return Err(DecodeError::Malformed("fingerprint mismatch"));
    }
    let start = hdr.header_len as usize;
    let end = start + hdr.payload_len as usize;
    if end != bytes.len() {
        return Err(if end > bytes.len() {
            DecodeError::Truncated
        } else {
            DecodeError::Malformed("trailing bytes")
        });
    }
    let payload = &bytes[start..end];
    if fnv64(payload) != hdr.checksum {
        return Err(DecodeError::Malformed("payload checksum mismatch"));
    }
    Ok((hdr, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ContractStore {
        let dir =
            std::env::temp_dir().join(format!("bolt-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ContractStore::open(dir).unwrap()
    }

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n)
    }

    #[test]
    fn put_get_list_evict() {
        let store = temp_store("basic");
        let payload = b"not a real exploration, but faithful bytes".to_vec();
        store
            .put(fp(7), RecordKind::Exploration, "bridge", 1, 9, &payload)
            .unwrap();
        assert_eq!(
            store.get(fp(7), RecordKind::Exploration).as_deref(),
            Some(payload.as_slice())
        );
        assert_eq!(store.hits(), 1);
        // Same key, different kind: distinct record slots.
        assert!(store.get(fp(7), RecordKind::Contract).is_none());
        assert!(store.get(fp(7), RecordKind::Composed).is_none());
        assert_eq!(store.misses(), 2);
        // A composed record under the same fingerprint lives beside it.
        store
            .put(fp(7), RecordKind::Composed, "fw+rt", 1, 3, b"composed")
            .unwrap();
        assert_eq!(
            store.get(fp(7), RecordKind::Composed).as_deref(),
            Some(b"composed".as_slice())
        );
        let entries = store.list().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].nf_name, "bridge");
        assert_eq!(entries[0].n_paths, 9);
        assert_eq!(entries[0].level, 1);
        assert_eq!(entries[0].payload_len, payload.len() as u64);
        assert_eq!(entries[1].nf_name, "fw+rt");
        assert_eq!(entries[1].kind, RecordKind::Composed);
        assert!(store.evict(fp(7), RecordKind::Composed).unwrap());
        assert!(store.evict(fp(7), RecordKind::Exploration).unwrap());
        assert!(!store.evict(fp(7), RecordKind::Exploration).unwrap());
        assert!(store.get(fp(7), RecordKind::Exploration).is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_records_are_misses() {
        let store = temp_store("corrupt");
        store
            .put(fp(1), RecordKind::Exploration, "nat", 0, 8, b"payload!")
            .unwrap();
        let path = store.path_of(fp(1), RecordKind::Exploration);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte: checksum must catch it on `get`, but
        // the record still *lists* — enumeration is a header pass, and
        // the corrupt file still occupies disk (sweep budget food).
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(store.get(fp(1), RecordKind::Exploration).is_none());
        assert_eq!(store.list().unwrap().len(), 1);
        assert!(store.header(fp(1), RecordKind::Exploration).is_some());
        // Truncated file: the header's size cross-check rejects it
        // everywhere, payload unread.
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(store.get(fp(1), RecordKind::Exploration).is_none());
        assert!(store.header(fp(1), RecordKind::Exploration).is_none());
        // list() must skip it rather than fail.
        assert!(store.list().unwrap().is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn header_reads_skip_the_payload() {
        let store = temp_store("header");
        let payload = vec![0xA5u8; 4096];
        store
            .put(fp(9), RecordKind::Contract, "bridge", 1, 12, &payload)
            .unwrap();
        let hdr = store.header(fp(9), RecordKind::Contract).expect("header");
        assert_eq!(hdr.fingerprint, fp(9));
        assert_eq!(hdr.kind, RecordKind::Contract);
        assert_eq!(hdr.nf_name, "bridge");
        assert_eq!(hdr.level, 1);
        assert_eq!(hdr.n_paths, 12);
        assert_eq!(hdr.payload_len, payload.len() as u64);
        assert_eq!(hdr.checksum, fnv64(&payload));
        let file_len = fs::metadata(store.path_of(fp(9), RecordKind::Contract))
            .unwrap()
            .len();
        assert_eq!(hdr.header_len + hdr.payload_len, file_len);
        // A header read must not count as (or affect) hit/miss traffic,
        // and must not bump the stamp.
        assert_eq!((store.hits(), store.misses()), (0, 0));
        assert_eq!(
            store.header(fp(9), RecordKind::Contract).unwrap().last_used,
            hdr.last_used
        );
        // Wrong kind/fingerprint: None.
        assert!(store.header(fp(9), RecordKind::Exploration).is_none());
        assert!(store.header(fp(8), RecordKind::Contract).is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn touch_bumps_the_stamp_like_a_get() {
        let store = temp_store("touch");
        store
            .put(fp(1), RecordKind::Exploration, "fw", 0, 1, b"abc")
            .unwrap();
        let before = store.header(fp(1), RecordKind::Exploration).unwrap();
        assert!(store.touch(fp(1), RecordKind::Exploration).unwrap());
        let after = store.header(fp(1), RecordKind::Exploration).unwrap();
        assert!(after.last_used > before.last_used);
        // Touching a missing or skewed record is a clean false.
        assert!(!store.touch(fp(2), RecordKind::Exploration).unwrap());
        let path = store.path_of(fp(1), RecordKind::Exploration);
        let mut bytes = fs::read(&path).unwrap();
        bytes[4] = bytes[4].wrapping_add(1); // version skew
        fs::write(&path, &bytes).unwrap();
        assert!(!store.touch(fp(1), RecordKind::Exploration).unwrap());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn version_skew_is_rejected() {
        let store = temp_store("version");
        store
            .put(fp(2), RecordKind::Contract, "lb", 1, 8, b"vvv")
            .unwrap();
        let path = store.path_of(fp(2), RecordKind::Contract);
        let mut bytes = fs::read(&path).unwrap();
        // Bump the version field (offset 4, after the magic).
        bytes[4] = bytes[4].wrapping_add(1);
        fs::write(&path, &bytes).unwrap();
        assert!(store.get(fp(2), RecordKind::Contract).is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn get_bumps_the_last_used_stamp() {
        let store = temp_store("stamp");
        store
            .put(fp(1), RecordKind::Exploration, "bridge", 0, 1, b"a")
            .unwrap();
        let before = store.list().unwrap()[0].last_used;
        assert!(before > 0, "put must stamp the record");
        assert!(store.get(fp(1), RecordKind::Exploration).is_some());
        let after = store.list().unwrap()[0].last_used;
        assert!(after > before, "a verified get must bump the stamp");
        // A miss (wrong kind) must bump nothing.
        assert!(store.get(fp(1), RecordKind::Contract).is_none());
        assert_eq!(store.list().unwrap()[0].last_used, after);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn sweep_keeps_mru_within_budget() {
        let store = temp_store("sweep");
        // Four same-size records, then touch two of them so recency is
        // 2 > 0 > 3 > 1.
        for i in 0..4u128 {
            store
                .put(fp(i), RecordKind::Exploration, "nf", 0, 1, &[0u8; 64])
                .unwrap();
        }
        assert!(store.get(fp(0), RecordKind::Exploration).is_some());
        assert!(store.get(fp(2), RecordKind::Exploration).is_some());
        let file_size = fs::metadata(store.path_of(fp(0), RecordKind::Exploration))
            .unwrap()
            .len();
        // Budget for exactly two records: the two most recently used
        // survive, the other two go.
        let report = store.sweep(2 * file_size).unwrap();
        assert_eq!((report.kept, report.evicted), (2, 2));
        assert_eq!(report.kept_bytes, 2 * file_size);
        assert_eq!(report.evicted_bytes, 2 * file_size);
        assert!(report.kept_bytes <= 2 * file_size, "budget respected");
        assert!(store.get(fp(0), RecordKind::Exploration).is_some());
        assert!(store.get(fp(2), RecordKind::Exploration).is_some());
        assert!(store.get(fp(1), RecordKind::Exploration).is_none());
        assert!(store.get(fp(3), RecordKind::Exploration).is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn sweep_evicts_format_skewed_and_garbage_files_first() {
        let store = temp_store("sweep-skew");
        store
            .put(fp(1), RecordKind::Exploration, "nf", 0, 1, &[0u8; 64])
            .unwrap();
        let good_size = fs::metadata(store.path_of(fp(1), RecordKind::Exploration))
            .unwrap()
            .len();
        // A pre-upgrade record (version skew) and plain garbage, both
        // under `.bolt` names nothing addresses: dead weight that must
        // rank oldest and go first.
        let skewed = store.path_of(fp(2), RecordKind::Exploration);
        let mut bytes = fs::read(store.path_of(fp(1), RecordKind::Exploration)).unwrap();
        bytes[4] = bytes[4].wrapping_add(1);
        fs::write(&skewed, &bytes).unwrap();
        let garbage = store.dir().join("junk.bolt");
        fs::write(&garbage, b"xx").unwrap();
        let report = store.sweep(good_size).unwrap();
        assert_eq!(report.kept, 1, "the live record fits the budget");
        assert_eq!(report.evicted, 2, "skewed + garbage files are swept");
        assert!(!skewed.exists());
        assert!(!garbage.exists());
        assert!(store.get(fp(1), RecordKind::Exploration).is_some());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn sweep_never_exceeds_the_budget() {
        let store = temp_store("sweep-budget");
        for i in 0..5u128 {
            store
                .put(
                    fp(i),
                    RecordKind::Exploration,
                    "nf",
                    0,
                    1,
                    &vec![0u8; 32 * (i as usize + 1)],
                )
                .unwrap();
        }
        let total: u64 = store
            .list()
            .unwrap()
            .iter()
            .map(|e| {
                fs::metadata(store.path_of(e.fingerprint, e.kind))
                    .unwrap()
                    .len()
            })
            .sum();
        for budget in [0, 1, total / 3, total / 2, total, total * 2] {
            let report = store.sweep(budget).unwrap();
            assert!(
                report.kept_bytes <= budget,
                "kept {} bytes under a {budget}-byte budget",
                report.kept_bytes
            );
            // Sweeping to a larger budget later can't resurrect records,
            // so re-seed for the next round.
            for i in 0..5u128 {
                store
                    .put(
                        fp(i),
                        RecordKind::Exploration,
                        "nf",
                        0,
                        1,
                        &vec![0u8; 32 * (i as usize + 1)],
                    )
                    .unwrap();
            }
        }
        // Budget 0 evicts everything.
        let report = store.sweep(0).unwrap();
        assert_eq!(report.kept, 0);
        assert!(store.list().unwrap().is_empty());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn open_quarantines_orphaned_tmp_files() {
        let store = temp_store("quarantine");
        store
            .put(fp(1), RecordKind::Exploration, "fw", 0, 1, b"live")
            .unwrap();
        // A dead writer's leavings: a torn scratch file and a complete
        // one that never got renamed.
        fs::write(store.dir().join(".00ff.exp.tmp.999.0"), b"torn").unwrap();
        fs::write(
            store.dir().join(".00aa.ctr.tmp.999.1"),
            b"complete-but-orphaned",
        )
        .unwrap();
        // Unrelated dotfiles are not ours to delete.
        fs::write(store.dir().join(".keepme"), b"user file").unwrap();
        let reopened = ContractStore::open(store.dir().to_path_buf()).unwrap();
        assert_eq!(reopened.quarantined(), 2);
        assert!(!store.dir().join(".00ff.exp.tmp.999.0").exists());
        assert!(!store.dir().join(".00aa.ctr.tmp.999.1").exists());
        assert!(store.dir().join(".keepme").exists());
        assert_eq!(
            reopened.get(fp(1), RecordKind::Exploration).as_deref(),
            Some(b"live".as_slice()),
            "quarantine must not touch real records"
        );
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn faulted_puts_fail_clean_and_heal() {
        use bolt_fault::{site, FaultPlan};
        let dir =
            std::env::temp_dir().join(format!("bolt-store-test-fault-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        // One crash of every flavour, scheduled deterministically.
        let plan = Arc::new(
            FaultPlan::seeded(42)
                .with_at(site::STORE_WRITE_PARTIAL, 1)
                .with_at(site::STORE_RENAME, 1)
                .with_at(site::STORE_WRITE, 1)
                .with_at(site::STORE_READ, 1),
        );
        let store = ContractStore::with_faults(&dir, Some(plan)).unwrap();
        // Torn write: put fails, final path untouched, torn tmp left.
        assert!(store
            .put(fp(1), RecordKind::Exploration, "nf", 0, 1, b"aaaa")
            .is_err());
        assert!(store.get(fp(1), RecordKind::Exploration).is_none()); // also burns the read fault
                                                                      // Crash before rename: put fails, complete tmp orphaned.
        assert!(store
            .put(fp(1), RecordKind::Exploration, "nf", 0, 1, b"aaaa")
            .is_err());
        // Plain write failure: cleaned up eagerly.
        assert!(store
            .put(fp(1), RecordKind::Exploration, "nf", 0, 1, b"aaaa")
            .is_err());
        // All faults burnt: the same put now lands and reads back.
        store
            .put(fp(1), RecordKind::Exploration, "nf", 0, 1, b"aaaa")
            .unwrap();
        assert_eq!(
            store.get(fp(1), RecordKind::Exploration).as_deref(),
            Some(b"aaaa".as_slice())
        );
        // Reopen heals the two crash orphans (torn + unrenamed).
        let reopened = ContractStore::open(&dir).unwrap();
        assert_eq!(reopened.quarantined(), 2);
        assert_eq!(
            reopened.get(fp(1), RecordKind::Exploration).as_deref(),
            Some(b"aaaa".as_slice())
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn renamed_records_cannot_impersonate() {
        let store = temp_store("rename");
        store
            .put(fp(3), RecordKind::Exploration, "lpm", 0, 4, b"abc")
            .unwrap();
        // Copy record 3's bytes under key 4's file name.
        let from = store.path_of(fp(3), RecordKind::Exploration);
        let to = store.path_of(fp(4), RecordKind::Exploration);
        fs::copy(&from, &to).unwrap();
        assert!(
            store.get(fp(4), RecordKind::Exploration).is_none(),
            "embedded fingerprint must veto the file name"
        );
        assert!(store.get(fp(3), RecordKind::Exploration).is_some());
        let _ = fs::remove_dir_all(store.dir());
    }
}
