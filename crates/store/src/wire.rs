//! The wire substrate: a compact hand-written binary format.
//!
//! Little-endian fixed-width integers, LEB128-style varints for counts
//! and indices, and length-prefixed byte strings. Readers are fully
//! checked: every decode path returns [`DecodeError`] instead of
//! panicking, so a truncated or hostile file can never take the process
//! down.

use std::fmt;

/// Decoding failure. Carries a static description of the first violated
/// invariant; the store treats any error as "record unusable".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The input ended before the value did.
    Truncated,
    /// The bytes decoded but violated a format invariant.
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "record truncated"),
            DecodeError::Malformed(what) => write!(f, "malformed record: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Growable output buffer with typed little-endian writers.
#[derive(Default, Debug)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Raw bytes, no length prefix (fixed-size fields like magic numbers).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u128 (fingerprints).
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// One-byte boolean (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// LEB128 varint (7 bits per byte, high bit = continuation).
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// Checked reader over an encoded byte slice.
#[derive(Clone, Copy, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader over the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the input is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fail unless the input is fully consumed (trailing garbage means
    /// the record does not match the format that allegedly wrote it).
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::Malformed("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Raw bytes of a known length (fixed-size fields).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian u16.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Little-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Little-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Little-endian u128.
    pub fn u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// One-byte boolean; any value other than 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Malformed("boolean out of range")),
        }
    }

    /// LEB128 varint (at most 10 bytes for a u64).
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(DecodeError::Malformed("varint overflows u64"));
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Varint narrowed to usize with an explicit cap (defends count
    /// fields against allocation bombs from corrupt files). Every
    /// element of an encoded collection occupies at least one byte, so
    /// a count exceeding the remaining input is malformed too — this is
    /// what keeps `Vec::with_capacity(count)` at decode sites bounded
    /// by the file size, not by a forged header.
    pub fn count(&mut self, cap: usize) -> Result<usize, DecodeError> {
        let v = self.varint()?;
        if v > cap as u64 || v > self.remaining() as u64 {
            return Err(DecodeError::Malformed("count exceeds sanity cap"));
        }
        Ok(v as usize)
    }

    /// Length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(DecodeError::Truncated);
        }
        self.take(n as usize)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| DecodeError::Malformed("string not UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = ByteWriter::new();
        w.u8(0xAB);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.u128(0x6c62272e07bb014262b821756295c58d);
        w.bool(true);
        w.varint(0);
        w.varint(127);
        w.varint(128);
        w.varint(u64::MAX);
        w.str("hello · monde");
        w.bytes(&[1, 2, 3]);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.u128().unwrap(), 0x6c62272e07bb014262b821756295c58d);
        assert!(r.bool().unwrap());
        assert_eq!(r.varint().unwrap(), 0);
        assert_eq!(r.varint().unwrap(), 127);
        assert_eq!(r.varint().unwrap(), 128);
        assert_eq!(r.varint().unwrap(), u64::MAX);
        assert_eq!(r.str().unwrap(), "hello · monde");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.u64(42);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf[..5]);
        assert_eq!(r.u64(), Err(DecodeError::Truncated));
        // A length prefix pointing past the end is truncation too.
        let mut w = ByteWriter::new();
        w.varint(1000);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.bytes(), Err(DecodeError::Truncated));
    }

    #[test]
    fn malformed_values_are_rejected() {
        let mut r = ByteReader::new(&[7]);
        assert!(matches!(r.bool(), Err(DecodeError::Malformed(_))));
        // An 11-byte varint cannot fit a u64.
        let bomb = [0xFF; 11];
        let mut r = ByteReader::new(&bomb);
        assert!(matches!(r.varint(), Err(DecodeError::Malformed(_))));
        let mut w = ByteWriter::new();
        w.varint(1 << 20);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.count(1 << 10), Err(DecodeError::Malformed(_))));
    }
}
