//! Persistent, content-addressed storage for performance contracts.
//!
//! The paper's workflow derives a contract once per NF and queries it many
//! times; exploration is deterministic per (NF configuration, stack
//! level). This crate turns that determinism into a compile-once /
//! query-forever artifact:
//!
//! * [`fingerprint`] — a stable, hand-rolled FNV-1a-128 [`Fingerprint`]
//!   over NF descriptor configuration, stack level, and the store format
//!   version. Content addressing: equal configs hash equally across
//!   processes and machines; any config or format change moves the key.
//! * [`wire`] — a compact hand-written binary codec substrate
//!   ([`ByteWriter`]/[`ByteReader`], varints, length-prefixed strings) —
//!   no serde, no external dependencies.
//! * [`codec`] — encoders/decoders for the shared primitive types:
//!   [`bolt_expr::TermPool`] (with rehydration that re-interns every node
//!   so decoded terms are bit-identical to fresh ones),
//!   [`bolt_expr::PerfExpr`] vectors, and [`bolt_trace::TraceEvent`]
//!   streams. Domain codecs build on these: `bolt_see` encodes
//!   exploration results, `bolt_core` encodes contracts.
//! * [`store`] — the [`ContractStore`] front door: a directory of
//!   checksummed records addressed by fingerprint, with `open`, `get`,
//!   `put`, `list`, and `evict`. Corrupt or version-skewed records are
//!   rejected (treated as misses), never returned.
//!
//! The typed entry points (`get_or_explore`, `Bolt::with_store`) live in
//! `bolt_core`, which layers NF awareness on top of this crate's raw
//! records.

pub mod codec;
pub mod fingerprint;
pub mod store;
pub mod wire;

pub use fingerprint::{fnv64, Fingerprint, Fingerprinter, STORE_FORMAT_VERSION};
pub use store::{ContractStore, RecordHeader, RecordKind, StoreEntry, SweepReport};
pub use wire::{ByteReader, ByteWriter, DecodeError};

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Intern a decoded tag into a `&'static str`.
///
/// Path tags are `&'static str` in the in-memory representation (they come
/// from string literals in NF code). Decoding leaks each *distinct* tag
/// string exactly once, so the leak is bounded by the tag vocabulary, not
/// by the number of decoded records.
pub fn intern_tag(s: &str) -> &'static str {
    static TAGS: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut map = TAGS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("tag interner poisoned");
    if let Some(&t) = map.get(s) {
        return t;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    map.insert(s.to_owned(), leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_interning_dedups() {
        let a = intern_tag("dst:broadcast");
        let b = intern_tag("dst:broadcast");
        assert_eq!(a.as_ptr(), b.as_ptr(), "same tag must not leak twice");
        assert_eq!(a, "dst:broadcast");
    }
}
