//! Stable content fingerprints for store keys.
//!
//! A [`Fingerprint`] identifies "the exploration of this exact NF
//! configuration at this exact stack level under this exact store
//! format". It is computed with a hand-rolled FNV-1a-128 — deterministic
//! across processes, machines, and Rust versions, unlike
//! `DefaultHasher`'s seeded SipHash — and every field is fed through a
//! typed, length-disambiguated encoding so `("ab", "c")` and
//! `("a", "bc")` hash differently.

use std::fmt;

/// Version of the on-disk record format. Mixed into every fingerprint
/// (so a format change cold-starts the store rather than misreading old
/// records) and written into every record header (so skewed files are
/// rejected outright).
///
/// History: 2 added the fixed-offset last-used stamp (LRU sweep).
pub const STORE_FORMAT_VERSION: u16 = 2;

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = (1 << 88) + (1 << 8) + 0x3b;

const FNV64_OFFSET: u64 = 0xcbf29ce484222325;
const FNV64_PRIME: u64 = 0x100000001b3;

/// FNV-1a-64 of a byte slice (payload checksums).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// A 128-bit content fingerprint (the store's addressing key).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl Fingerprint {
    /// Parse the 32-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

/// Incremental FNV-1a-128 hasher with typed, self-delimiting inputs.
///
/// NF descriptors feed their configuration through this
/// (`NetworkFunction::fingerprint_config`); `bolt_core` adds the NF name
/// and stack level and finishes the key.
#[derive(Clone, Debug)]
pub struct Fingerprinter {
    state: u128,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprinter {
    /// Fresh hasher, pre-seeded with [`STORE_FORMAT_VERSION`].
    pub fn new() -> Self {
        let mut fp = Fingerprinter {
            state: FNV128_OFFSET,
        };
        fp.u16(STORE_FORMAT_VERSION);
        fp
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Feed one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.write(&[v]);
        self
    }

    /// Feed a u16 (little-endian).
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.write(&v.to_le_bytes());
        self
    }

    /// Feed a u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.write(&v.to_le_bytes());
        self
    }

    /// Feed a u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes());
        self
    }

    /// Feed a u128 (little-endian). Composed-chain keys feed their two
    /// operand fingerprints through here.
    pub fn u128(&mut self, v: u128) -> &mut Self {
        self.write(&v.to_le_bytes());
        self
    }

    /// Feed a usize (hashed as u64, so 32- and 64-bit hosts agree).
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Feed a boolean.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// Feed a string, length-prefixed (self-delimiting).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64);
        self.write(s.as_bytes());
        self
    }

    /// The fingerprint of everything fed so far.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // FNV-1a-64 reference vectors.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        let mut a = Fingerprinter::new();
        a.str("bridge").u64(1024).u8(0);
        let mut b = Fingerprinter::new();
        b.str("bridge").u64(1024).u8(0);
        assert_eq!(a.finish(), b.finish(), "same input, same fingerprint");
        let mut c = Fingerprinter::new();
        c.str("bridge").u64(1024).u8(1);
        assert_ne!(a.finish(), c.finish(), "one byte must move the key");
    }

    #[test]
    fn strings_are_self_delimiting() {
        let mut a = Fingerprinter::new();
        a.str("ab").str("c");
        let mut b = Fingerprinter::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn display_and_parse_round_trip() {
        let fp = Fingerprinter::new().str("nat").finish();
        let s = fp.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(Fingerprint::parse(&s), Some(fp));
        assert_eq!(Fingerprint::parse("nope"), None);
    }
}
