//! Codecs for the primitive types shared by every stored record:
//! [`TermPool`]s, [`PerfExpr`] polynomials, and [`TraceEvent`] streams.
//!
//! The pool codec is the load-bearing piece: it writes the symbol
//! registry and the term arena *in intern order*, and decoding replays
//! both through the pool's own registration/interning hooks. Because
//! interning assigns sequential indices and every stored node is
//! distinct, the rehydrated pool is bit-identical to the original —
//! same arena, same [`TermRef`] indices, same symbol ids — so decoded
//! contracts are query- and compose-identical to freshly explored ones.
//!
//! Domain codecs (`bolt_see` for explorations, `bolt_core` for
//! contracts) compose these primitives.

use bolt_expr::{BinOp, Monomial, PcvId, PerfExpr, Term, TermPool, TermRef, UnOp, Width};
use bolt_trace::{DsId, InstrClass, Marker, StatefulCall, TraceEvent};

use crate::wire::{ByteReader, ByteWriter, DecodeError};

/// Sanity cap for decoded counts: no legitimate record holds more than
/// this many elements in any one collection.
pub const MAX_COUNT: usize = 1 << 28;

// ----------------------------------------------------------------------
// Enums ↔ tags
// ----------------------------------------------------------------------

fn width_tag(w: Width) -> u8 {
    match w {
        Width::W1 => 0,
        Width::W8 => 1,
        Width::W16 => 2,
        Width::W32 => 3,
        Width::W48 => 4,
        Width::W64 => 5,
    }
}

fn width_from_tag(t: u8) -> Result<Width, DecodeError> {
    Ok(match t {
        0 => Width::W1,
        1 => Width::W8,
        2 => Width::W16,
        3 => Width::W32,
        4 => Width::W48,
        5 => Width::W64,
        _ => return Err(DecodeError::Malformed("width tag out of range")),
    })
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::And => 3,
        BinOp::Or => 4,
        BinOp::Xor => 5,
        BinOp::Shl => 6,
        BinOp::Shr => 7,
        BinOp::Eq => 8,
        BinOp::Ne => 9,
        BinOp::Ult => 10,
        BinOp::Ule => 11,
    }
}

fn binop_from_tag(t: u8) -> Result<BinOp, DecodeError> {
    Ok(match t {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::And,
        4 => BinOp::Or,
        5 => BinOp::Xor,
        6 => BinOp::Shl,
        7 => BinOp::Shr,
        8 => BinOp::Eq,
        9 => BinOp::Ne,
        10 => BinOp::Ult,
        11 => BinOp::Ule,
        _ => return Err(DecodeError::Malformed("binop tag out of range")),
    })
}

fn instr_class_tag(c: InstrClass) -> u8 {
    c.index() as u8
}

fn instr_class_from_tag(t: u8) -> Result<InstrClass, DecodeError> {
    InstrClass::ALL
        .get(t as usize)
        .copied()
        .ok_or(DecodeError::Malformed("instruction class out of range"))
}

// ----------------------------------------------------------------------
// TermRef
// ----------------------------------------------------------------------

/// Write a term reference as its arena index.
pub fn write_term_ref(w: &mut ByteWriter, t: TermRef) {
    w.varint(t.index() as u64);
}

/// Read a term reference, bounds-checked against the rehydrated pool.
pub fn read_term_ref(r: &mut ByteReader<'_>, pool: &TermPool) -> Result<TermRef, DecodeError> {
    let idx = r.varint()?;
    if idx >= pool.len() as u64 {
        return Err(DecodeError::Malformed("term index out of range"));
    }
    Ok(TermRef::from_raw(idx as u32))
}

// ----------------------------------------------------------------------
// TermPool
// ----------------------------------------------------------------------

/// Encode a pool: symbol registry, then the arena in intern order.
pub fn write_pool(w: &mut ByteWriter, pool: &TermPool) {
    w.varint(pool.sym_count() as u64);
    for (name, width) in pool.sym_entries() {
        w.str(name);
        w.u8(width_tag(width));
    }
    w.varint(pool.len() as u64);
    for t in pool.nodes() {
        match *t {
            Term::Const { value, width } => {
                w.u8(0);
                w.varint(value);
                w.u8(width_tag(width));
            }
            Term::Sym { id, width } => {
                w.u8(1);
                w.varint(id as u64);
                w.u8(width_tag(width));
            }
            Term::Unop { op: UnOp::Not, a } => {
                w.u8(2);
                write_term_ref(w, a);
            }
            Term::Binop { op, a, b } => {
                w.u8(3);
                w.u8(binop_tag(op));
                write_term_ref(w, a);
                write_term_ref(w, b);
            }
            Term::Ite { c, t, e } => {
                w.u8(4);
                write_term_ref(w, c);
                write_term_ref(w, t);
                write_term_ref(w, e);
            }
            Term::Zext { a, width } => {
                w.u8(5);
                write_term_ref(w, a);
                w.u8(width_tag(width));
            }
            Term::Trunc { a, width } => {
                w.u8(6);
                write_term_ref(w, a);
                w.u8(width_tag(width));
            }
        }
    }
}

/// Decode a pool by replaying registration and interning. The decoded
/// pool is bit-identical: every node lands at its original index (this
/// is verified, not assumed).
pub fn read_pool(r: &mut ByteReader<'_>) -> Result<TermPool, DecodeError> {
    let mut pool = TermPool::new();
    let n_syms = r.count(MAX_COUNT)?;
    for _ in 0..n_syms {
        let name = r.str()?;
        let width = width_from_tag(r.u8()?)?;
        pool.register_sym(name, width);
    }
    let n_terms = r.count(MAX_COUNT)?;
    for expect in 0..n_terms {
        // Children must precede parents, so every reference inside the
        // node being read must point below `expect`.
        let child = |r: &mut ByteReader<'_>, pool: &TermPool| -> Result<TermRef, DecodeError> {
            let t = read_term_ref(r, pool)?;
            if t.index() >= expect {
                return Err(DecodeError::Malformed("term child after parent"));
            }
            Ok(t)
        };
        let node = match r.u8()? {
            0 => {
                let value = r.varint()?;
                let width = width_from_tag(r.u8()?)?;
                if value & !width.mask() != 0 {
                    return Err(DecodeError::Malformed("constant exceeds width"));
                }
                Term::Const { value, width }
            }
            1 => {
                let id = r.varint()?;
                let width = width_from_tag(r.u8()?)?;
                if id >= pool.sym_count() as u64 {
                    return Err(DecodeError::Malformed("symbol id out of range"));
                }
                Term::Sym {
                    id: id as u32,
                    width,
                }
            }
            2 => Term::Unop {
                op: UnOp::Not,
                a: child(r, &pool)?,
            },
            3 => {
                let op = binop_from_tag(r.u8()?)?;
                let a = child(r, &pool)?;
                let b = child(r, &pool)?;
                Term::Binop { op, a, b }
            }
            4 => {
                let c = child(r, &pool)?;
                let t = child(r, &pool)?;
                let e = child(r, &pool)?;
                Term::Ite { c, t, e }
            }
            5 => {
                let a = child(r, &pool)?;
                let width = width_from_tag(r.u8()?)?;
                Term::Zext { a, width }
            }
            6 => {
                let a = child(r, &pool)?;
                let width = width_from_tag(r.u8()?)?;
                Term::Trunc { a, width }
            }
            _ => return Err(DecodeError::Malformed("term tag out of range")),
        };
        let got = pool.intern_node(node);
        if got.index() != expect {
            // A duplicate node in the stream would dedup to an earlier
            // index and shift everything after it.
            return Err(DecodeError::Malformed("pool rehydration diverged"));
        }
    }
    Ok(pool)
}

// ----------------------------------------------------------------------
// PerfExpr
// ----------------------------------------------------------------------

/// Encode a performance polynomial (monomials in BTreeMap order, so the
/// encoding is canonical).
pub fn write_perf(w: &mut ByteWriter, e: &PerfExpr) {
    let terms: Vec<(&Monomial, u64)> = e.iter().collect();
    w.varint(terms.len() as u64);
    for (m, c) in terms {
        w.varint(m.vars().len() as u64);
        for v in m.vars() {
            w.varint(v.0 as u64);
        }
        w.varint(c);
    }
}

/// Decode a performance polynomial.
pub fn read_perf(r: &mut ByteReader<'_>) -> Result<PerfExpr, DecodeError> {
    let n = r.count(MAX_COUNT)?;
    let mut e = PerfExpr::zero();
    for _ in 0..n {
        let deg = r.count(64)?;
        let mut vars = Vec::with_capacity(deg);
        for _ in 0..deg {
            let v = r.varint()?;
            if v > u32::MAX as u64 {
                return Err(DecodeError::Malformed("pcv id out of range"));
            }
            vars.push(PcvId(v as u32));
        }
        let coeff = r.varint()?;
        e.add_assign(&PerfExpr::term(Monomial::from_vars(vars), coeff));
    }
    Ok(e)
}

// ----------------------------------------------------------------------
// TraceEvent
// ----------------------------------------------------------------------

fn marker_parts(m: Marker) -> (u8, u64) {
    match m {
        Marker::PacketStart(s) => (0, s),
        Marker::PacketEnd(s) => (1, s),
        Marker::RxStart => (2, 0),
        Marker::NfStart => (3, 0),
        Marker::NfEnd => (4, 0),
        Marker::TxDone => (5, 0),
    }
}

fn marker_from_parts(tag: u8, seq: u64) -> Result<Marker, DecodeError> {
    Ok(match tag {
        0 => Marker::PacketStart(seq),
        1 => Marker::PacketEnd(seq),
        2 => Marker::RxStart,
        3 => Marker::NfStart,
        4 => Marker::NfEnd,
        5 => Marker::TxDone,
        _ => return Err(DecodeError::Malformed("marker tag out of range")),
    })
}

/// Encode one trace event.
pub fn write_event(w: &mut ByteWriter, ev: &TraceEvent) {
    match *ev {
        TraceEvent::Instr { class, n } => {
            w.u8(0);
            w.u8(instr_class_tag(class));
            w.varint(n as u64);
        }
        TraceEvent::MemRead { addr, bytes, dep } => {
            w.u8(1);
            w.varint(addr);
            w.u8(bytes);
            w.bool(dep);
        }
        TraceEvent::MemWrite { addr, bytes } => {
            w.u8(2);
            w.varint(addr);
            w.u8(bytes);
        }
        TraceEvent::Stateful(call) => {
            w.u8(3);
            w.varint(call.ds.0 as u64);
            w.u16(call.method);
            w.u16(call.case);
        }
        TraceEvent::Pcv { pcv, value } => {
            w.u8(4);
            w.varint(pcv.0 as u64);
            w.varint(value);
        }
        TraceEvent::Mark(m) => {
            let (tag, seq) = marker_parts(m);
            w.u8(5);
            w.u8(tag);
            w.varint(seq);
        }
    }
}

/// Decode one trace event.
pub fn read_event(r: &mut ByteReader<'_>) -> Result<TraceEvent, DecodeError> {
    Ok(match r.u8()? {
        0 => {
            let class = instr_class_from_tag(r.u8()?)?;
            let n = r.varint()?;
            if n > u32::MAX as u64 {
                return Err(DecodeError::Malformed("instruction count out of range"));
            }
            TraceEvent::Instr { class, n: n as u32 }
        }
        1 => TraceEvent::MemRead {
            addr: r.varint()?,
            bytes: r.u8()?,
            dep: r.bool()?,
        },
        2 => TraceEvent::MemWrite {
            addr: r.varint()?,
            bytes: r.u8()?,
        },
        3 => {
            let ds = r.varint()?;
            if ds > u32::MAX as u64 {
                return Err(DecodeError::Malformed("ds id out of range"));
            }
            TraceEvent::Stateful(StatefulCall {
                ds: DsId(ds as u32),
                method: r.u16()?,
                case: r.u16()?,
            })
        }
        4 => {
            let pcv = r.varint()?;
            if pcv > u32::MAX as u64 {
                return Err(DecodeError::Malformed("pcv id out of range"));
            }
            TraceEvent::Pcv {
                pcv: PcvId(pcv as u32),
                value: r.varint()?,
            }
        }
        5 => {
            let tag = r.u8()?;
            let seq = r.varint()?;
            TraceEvent::Mark(marker_from_parts(tag, seq)?)
        }
        _ => return Err(DecodeError::Malformed("event tag out of range")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_pool() -> (TermPool, Vec<TermRef>) {
        let mut p = TermPool::new();
        let et = p.fresh_sym("pkt.ether_type", Width::W16);
        let v4 = p.constant(0x0800, Width::W16);
        let is_v4 = p.eq(et, v4);
        let src = p.fresh_sym("pkt.src", Width::W32);
        let z = p.zext(src, Width::W64);
        let cap = p.constant(1000, Width::W64);
        let lt = p.ult(z, cap);
        let not = p.not(is_v4);
        let c = p.fresh_sym("hit", Width::W1);
        let t8 = p.trunc(src, Width::W8);
        let e8 = p.constant(3, Width::W8);
        let pick = p.ite(c, t8, e8);
        let e8b = p.eq(pick, e8);
        (p, vec![is_v4, lt, not, e8b])
    }

    #[test]
    fn pool_round_trip_is_bit_identical() {
        let (pool, roots) = toy_pool();
        let mut w = ByteWriter::new();
        write_pool(&mut w, &pool);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        let decoded = read_pool(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(decoded.len(), pool.len());
        assert_eq!(decoded.sym_count(), pool.sym_count());
        assert_eq!(decoded.nodes(), pool.nodes());
        for (a, b) in decoded.sym_entries().zip(pool.sym_entries()) {
            assert_eq!(a, b);
        }
        for &root in &roots {
            assert_eq!(decoded.display(root), pool.display(root));
            assert_eq!(decoded.width(root), pool.width(root));
            assert_eq!(decoded.syms_of(root), pool.syms_of(root));
        }
    }

    #[test]
    fn rehydrated_pool_still_interns() {
        // The decoded pool must be a *working* pool: constructing a term
        // that already exists must dedup to the original index.
        let (pool, roots) = toy_pool();
        let mut w = ByteWriter::new();
        write_pool(&mut w, &pool);
        let buf = w.into_bytes();
        let mut decoded = read_pool(&mut ByteReader::new(&buf)).unwrap();
        let n = decoded.len();
        let et = decoded.sym_ref(0);
        let v4 = decoded.constant(0x0800, Width::W16);
        let again = decoded.eq(et, v4);
        assert_eq!(again, roots[0]);
        assert_eq!(decoded.len(), n, "re-construction allocates nothing");
    }

    #[test]
    fn corrupt_pool_bytes_are_rejected() {
        let (pool, _) = toy_pool();
        let mut w = ByteWriter::new();
        write_pool(&mut w, &pool);
        let buf = w.into_bytes();
        // Truncations at every prefix length must error, never panic.
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            assert!(read_pool(&mut r).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn perf_round_trip() {
        let e_id = PcvId(0);
        let c_id = PcvId(1);
        let mut e = PerfExpr::constant(882);
        e.add_assign(&PerfExpr::var(e_id, 245));
        e.add_assign(&PerfExpr::term(
            Monomial::var(e_id).mul(&Monomial::var(c_id)),
            82,
        ));
        let mut w = ByteWriter::new();
        write_perf(&mut w, &e);
        let buf = w.into_bytes();
        let got = read_perf(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(got, e);
        // Zero polynomial too.
        let mut w = ByteWriter::new();
        write_perf(&mut w, &PerfExpr::zero());
        let buf = w.into_bytes();
        assert_eq!(
            read_perf(&mut ByteReader::new(&buf)).unwrap(),
            PerfExpr::zero()
        );
    }

    #[test]
    fn event_round_trip() {
        let events = vec![
            TraceEvent::Instr {
                class: InstrClass::Crc,
                n: 7,
            },
            TraceEvent::MemRead {
                addr: 0xdead_beef,
                bytes: 8,
                dep: true,
            },
            TraceEvent::MemWrite {
                addr: 0x10,
                bytes: 2,
            },
            TraceEvent::Stateful(StatefulCall {
                ds: DsId(3),
                method: 1,
                case: 2,
            }),
            TraceEvent::Pcv {
                pcv: PcvId(5),
                value: 99,
            },
            TraceEvent::Mark(Marker::PacketStart(41)),
            TraceEvent::Mark(Marker::NfEnd),
        ];
        let mut w = ByteWriter::new();
        for ev in &events {
            write_event(&mut w, ev);
        }
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        for ev in &events {
            assert_eq!(&read_event(&mut r).unwrap(), ev);
        }
        r.expect_end().unwrap();
    }
}
