//! Crash-consistency torture for the contract store.
//!
//! Three attack surfaces:
//!
//! * **Torn records** — a record file truncated at *every* byte
//!   boundary must read as a miss (never a panic, never garbage data)
//!   and must heal on the next `put`.
//! * **Dead writers** — `.tmp` scratch files orphaned by a crashed
//!   process must be quarantined by `open`, and must never be visible
//!   as records in the meantime.
//! * **Faulted interleavings** — under a seeded [`FaultPlan`] that
//!   makes writes tear, renames "crash", fsyncs fail, and reads drop,
//!   every *successful* `get` must still return exactly the bytes that
//!   were put, and a fault-free reopen must heal the store completely.
//!
//! The storm tests honour `BOLT_FAULT_SEED` so CI can sweep seeds; the
//! assertions are seed-independent invariants, not golden outcomes.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bolt_fault::{site, FaultPlan};
use bolt_store::{ContractStore, Fingerprint, RecordKind};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bolt-torture-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fp(n: u128) -> Fingerprint {
    Fingerprint(n)
}

fn seed_from_env() -> u64 {
    std::env::var("BOLT_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB01F)
}

/// The single `.bolt` file in a one-record store.
fn only_record_file(dir: &Path) -> PathBuf {
    let mut found = None;
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("bolt") {
            assert!(found.is_none(), "expected exactly one record file");
            found = Some(path);
        }
    }
    found.expect("one record file")
}

#[test]
fn every_truncation_boundary_reads_as_a_miss_and_heals() {
    let dir = temp_dir("truncate");
    let store = ContractStore::with_faults(&dir, None).unwrap();
    let payload: Vec<u8> = (0..=255u8).collect();
    store
        .put(fp(7), RecordKind::Exploration, "bridge", 1, 3, &payload)
        .unwrap();
    let file = only_record_file(&dir);
    let full = fs::read(&file).unwrap();
    assert!(full.len() > 32, "record should outgrow its header");
    // Kill the write at every byte boundary, including the empty file.
    for cut in 0..full.len() {
        fs::write(&file, &full[..cut]).unwrap();
        assert_eq!(
            store.get(fp(7), RecordKind::Exploration),
            None,
            "truncation at byte {cut} must be a miss"
        );
        assert!(
            store.header(fp(7), RecordKind::Exploration).is_none(),
            "truncation at byte {cut} must not yield a header"
        );
        assert!(
            store.list().unwrap().is_empty(),
            "truncation at byte {cut} must not list"
        );
    }
    // A truncated record still occupies its name; sweep evicts it.
    fs::write(&file, &full[..full.len() / 2]).unwrap();
    store.sweep(0).unwrap();
    assert!(!file.exists(), "sweep(0) must clear the torn record");
    // And the next put heals the key completely.
    store
        .put(fp(7), RecordKind::Exploration, "bridge", 1, 3, &payload)
        .unwrap();
    assert_eq!(
        store.get(fp(7), RecordKind::Exploration).as_deref(),
        Some(payload.as_slice())
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn reopen_quarantines_dead_writer_leavings() {
    let dir = temp_dir("orphans");
    let store = ContractStore::with_faults(&dir, None).unwrap();
    assert_eq!(store.quarantined(), 0);
    store
        .put(fp(1), RecordKind::Exploration, "fw", 0, 1, b"keep me")
        .unwrap();
    // Forge what kill -9'd writers leave: torn and complete scratch
    // files under various pids/sequence numbers.
    for (name, bytes) in [
        (".dead1.exp.tmp.1.0", &b"torn"[..]),
        (".dead2.ctr.tmp.9999.3", &b"complete record bytes"[..]),
        (".dead3.cmp.tmp.42.7", &b""[..]),
    ] {
        fs::write(dir.join(name), bytes).unwrap();
    }
    // Orphans are invisible to every read path even before the reopen.
    assert_eq!(store.list().unwrap().len(), 1);
    let reopened = ContractStore::with_faults(&dir, None).unwrap();
    assert_eq!(reopened.quarantined(), 3);
    for name in [
        ".dead1.exp.tmp.1.0",
        ".dead2.ctr.tmp.9999.3",
        ".dead3.cmp.tmp.42.7",
    ] {
        assert!(!dir.join(name).exists(), "{name} must be quarantined");
    }
    assert_eq!(
        reopened.get(fp(1), RecordKind::Exploration).as_deref(),
        Some(b"keep me".as_slice()),
        "quarantine must not touch live records"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// The canonical payload for a storm key: derived from the key alone so
/// any thread can verify any get.
fn payload_for(key: u128) -> Vec<u8> {
    (0..96)
        .map(|i| (key as u8).wrapping_mul(31).wrapping_add(i))
        .collect()
}

fn storm_plan(seed: u64) -> Arc<FaultPlan> {
    Arc::new(
        FaultPlan::seeded(seed)
            .with_prob(site::STORE_WRITE_PARTIAL, 0.25)
            .with_prob(site::STORE_RENAME, 0.25)
            .with_prob(site::STORE_FSYNC, 0.15)
            .with_prob(site::STORE_READ, 0.20),
    )
}

/// One worker's share of the storm: hammer the store, assert only the
/// seed-independent invariant — a successful get returns exactly what
/// was put. Returns how many gets succeeded.
fn storm_ops(store: &ContractStore, keys: &[u128], rounds: usize) -> u64 {
    let mut good_gets = 0;
    for round in 0..rounds {
        for &key in keys {
            let expected = payload_for(key);
            // Puts may "crash" — that's the point; retry a bounded
            // number of times so most keys end up written.
            for _ in 0..4 {
                if store
                    .put(fp(key), RecordKind::Exploration, "storm", 1, 2, &expected)
                    .is_ok()
                {
                    break;
                }
            }
            if let Some(bytes) = store.get(fp(key), RecordKind::Exploration) {
                assert_eq!(
                    bytes, expected,
                    "a successful get must be exact (key {key})"
                );
                good_gets += 1;
            }
            let _ = store.touch(fp(key), RecordKind::Exploration);
        }
        if round % 3 == 2 {
            // A sweep with a generous budget keeps everything but still
            // exercises the header pass over possibly-torn files.
            let _ = store.sweep(1 << 20);
            let _ = store.list();
        }
    }
    good_gets
}

/// After a storm, a fault-free reopen must fully heal: orphans gone,
/// every key re-puttable and byte-exact.
fn assert_healed(dir: &Path, keys: &[u128]) {
    let healed = ContractStore::with_faults(dir, None).unwrap();
    for entry in fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name();
        let name = name.to_string_lossy();
        assert!(
            !name.contains(".tmp."),
            "no scratch file may survive reopen, found {name}"
        );
    }
    for &key in keys {
        let expected = payload_for(key);
        healed
            .put(fp(key), RecordKind::Exploration, "storm", 1, 2, &expected)
            .expect("puts are infallible without faults");
        assert_eq!(
            healed.get(fp(key), RecordKind::Exploration).as_deref(),
            Some(expected.as_slice())
        );
    }
}

#[test]
fn seeded_fault_storm_keeps_reads_exact() {
    let seed = seed_from_env();
    let dir = temp_dir("storm");
    let keys: Vec<u128> = (0x10..0x18).collect();
    let store = ContractStore::with_faults(&dir, Some(storm_plan(seed))).unwrap();
    let good = storm_ops(&store, &keys, 12);
    // With p(put eventually lands) ≈ 1 - 0.5^4 per op and p(read drop)
    // = 0.2, a storm that yields zero good gets means the harness is
    // broken, not unlucky — 96 attempts each pass independently.
    assert!(good > 0, "seed {seed}: no get ever succeeded");
    assert_healed(&dir, &keys);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_seeded_fault_storm_keeps_reads_exact() {
    let seed = seed_from_env();
    let dir = temp_dir("storm-mt");
    let store = Arc::new(ContractStore::with_faults(&dir, Some(storm_plan(seed ^ 0xA5))).unwrap());
    // Disjoint key ranges per thread keep the byte-exactness assertion
    // race-free; the *files and fault plan* are still fully shared, so
    // renames, sweeps, and quarantine scans interleave across threads.
    let mut workers = Vec::new();
    for t in 0..4u128 {
        let store = Arc::clone(&store);
        workers.push(std::thread::spawn(move || {
            let keys: Vec<u128> = (0x100 + t * 8..0x100 + t * 8 + 8).collect();
            storm_ops(&store, &keys, 6)
        }));
    }
    let good: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(good > 0, "seed {seed}: no get ever succeeded");
    let all_keys: Vec<u128> = (0x100..0x100 + 32).collect();
    assert_healed(&dir, &all_keys);
    let _ = fs::remove_dir_all(&dir);
}
