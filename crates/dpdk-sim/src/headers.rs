//! Packet header layout and a builder for test/workload frames.
//!
//! Offsets are for untagged Ethernet II + IPv4 + TCP/UDP, the frame shape
//! every NF in the paper processes. IPv4 options (used by the §5.2 static
//! router) sit between [`IPV4_DST`]`+4` and the L4 header; when options
//! are present the L4 offsets shift by `4 × option_words`, which NF code
//! must compute from the IHL field.

/// Offset of the destination MAC (6 bytes).
pub const ETHER_DST: u64 = 0;
/// Offset of the source MAC (6 bytes).
pub const ETHER_SRC: u64 = 6;
/// Offset of the EtherType (2 bytes).
pub const ETHER_TYPE: u64 = 12;
/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for IPv6 (used as an "invalid for this NF" class).
pub const ETHERTYPE_IPV6: u16 = 0x86DD;

/// Offset of the IPv4 version/IHL byte.
pub const IPV4_VER_IHL: u64 = 14;
/// Offset of the IPv4 total length (2 bytes).
pub const IPV4_TOTLEN: u64 = 16;
/// Offset of the IPv4 TTL byte.
pub const IPV4_TTL: u64 = 22;
/// Offset of the IPv4 protocol byte.
pub const IPV4_PROTO: u64 = 23;
/// Offset of the IPv4 header checksum (2 bytes).
pub const IPV4_CSUM: u64 = 24;
/// Offset of the IPv4 source address (4 bytes).
pub const IPV4_SRC: u64 = 26;
/// Offset of the IPv4 destination address (4 bytes).
pub const IPV4_DST: u64 = 30;
/// Offset of the first IPv4 option byte (when IHL > 5).
pub const IPV4_OPTS: u64 = 34;

/// Offset of the L4 source port for an option-less IPv4 header.
pub const L4_SPORT: u64 = 34;
/// Offset of the L4 destination port for an option-less IPv4 header.
pub const L4_DPORT: u64 = 36;

/// IPv4 protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;
/// IPv4 protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;

/// Minimum frame this substrate produces (headers only, no payload).
pub const MIN_FRAME: usize = 64;

/// Builder for well-formed test frames.
///
/// ```
/// use dpdk_sim::headers::*;
/// let frame = PacketBuilder::new()
///     .eth(0x0202_0202_0202, 0x0101_0101_0101, ETHERTYPE_IPV4)
///     .ipv4(0x0a00_0001, 0x0a00_0002, IPPROTO_UDP, 64)
///     .udp(1234, 80)
///     .build();
/// assert_eq!(frame.len(), MIN_FRAME);
/// assert_eq!(&frame[12..14], &[0x08, 0x00]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PacketBuilder {
    bytes: Vec<u8>,
    ihl_words: u8,
}

impl PacketBuilder {
    /// Start an empty frame.
    pub fn new() -> Self {
        PacketBuilder {
            bytes: vec![0; MIN_FRAME],
            ihl_words: 5,
        }
    }

    fn put(&mut self, off: usize, data: &[u8]) {
        if self.bytes.len() < off + data.len() {
            self.bytes.resize(off + data.len(), 0);
        }
        self.bytes[off..off + data.len()].copy_from_slice(data);
    }

    /// Ethernet header. MACs are the low 48 bits of the given values.
    pub fn eth(mut self, dst: u64, src: u64, ethertype: u16) -> Self {
        let d = dst.to_be_bytes();
        let s = src.to_be_bytes();
        self.put(ETHER_DST as usize, &d[2..8]);
        self.put(ETHER_SRC as usize, &s[2..8]);
        self.put(ETHER_TYPE as usize, &ethertype.to_be_bytes());
        self
    }

    /// IPv4 header without options.
    pub fn ipv4(mut self, src: u32, dst: u32, proto: u8, ttl: u8) -> Self {
        self.ihl_words = 5;
        self.put(IPV4_VER_IHL as usize, &[0x45]);
        self.put(IPV4_TOTLEN as usize, &46u16.to_be_bytes());
        self.put(IPV4_TTL as usize, &[ttl]);
        self.put(IPV4_PROTO as usize, &[proto]);
        self.put(IPV4_SRC as usize, &src.to_be_bytes());
        self.put(IPV4_DST as usize, &dst.to_be_bytes());
        self
    }

    /// Append `n` 4-byte IPv4 options (each a NOP-padded timestamp-style
    /// word). `n ≤ 10` per RFC 791's 40-byte option budget.
    pub fn ipv4_options(mut self, n: u8) -> Self {
        assert!(n <= 10, "IPv4 allows at most 40 option bytes");
        self.ihl_words = 5 + n;
        self.put(IPV4_VER_IHL as usize, &[0x40 | self.ihl_words]);
        for i in 0..n {
            // Type 68 (timestamp), length 4, pointer, overflow/flags.
            let off = IPV4_OPTS as usize + 4 * i as usize;
            self.put(off, &[68, 4, 5, 0]);
        }
        self
    }

    /// L4 header at the post-options offset.
    pub fn udp(mut self, sport: u16, dport: u16) -> Self {
        let l4 = 14 + 4 * self.ihl_words as usize;
        self.put(l4, &sport.to_be_bytes());
        self.put(l4 + 2, &dport.to_be_bytes());
        self
    }

    /// Finish the frame (padded to the 64-byte Ethernet minimum).
    pub fn build(mut self) -> Vec<u8> {
        if self.bytes.len() < MIN_FRAME {
            self.bytes.resize(MIN_FRAME, 0);
        }
        self.bytes
    }
}

/// The L4 offset of a frame whose IHL field says `ihl_words`.
pub fn l4_offset(ihl_words: u8) -> u64 {
    14 + 4 * ihl_words as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_layout_is_correct() {
        let f = PacketBuilder::new()
            .eth(0xAABBCCDDEEFF, 0x112233445566, ETHERTYPE_IPV4)
            .ipv4(0xC0A80101, 0x08080808, IPPROTO_TCP, 63)
            .udp(443, 55555)
            .build();
        assert_eq!(&f[0..6], &[0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF]);
        assert_eq!(&f[6..12], &[0x11, 0x22, 0x33, 0x44, 0x55, 0x66]);
        assert_eq!(u16::from_be_bytes([f[12], f[13]]), ETHERTYPE_IPV4);
        assert_eq!(f[IPV4_VER_IHL as usize], 0x45);
        assert_eq!(f[IPV4_TTL as usize], 63);
        assert_eq!(f[IPV4_PROTO as usize], IPPROTO_TCP);
        assert_eq!(u32::from_be_bytes([f[26], f[27], f[28], f[29]]), 0xC0A80101);
        assert_eq!(u16::from_be_bytes([f[34], f[35]]), 443);
    }

    #[test]
    fn options_shift_l4() {
        let f = PacketBuilder::new()
            .eth(1, 2, ETHERTYPE_IPV4)
            .ipv4(1, 2, IPPROTO_UDP, 64)
            .ipv4_options(3)
            .udp(10, 20)
            .build();
        assert_eq!(f[IPV4_VER_IHL as usize], 0x48);
        let l4 = l4_offset(8) as usize;
        assert_eq!(u16::from_be_bytes([f[l4], f[l4 + 1]]), 10);
        assert_eq!(f[IPV4_OPTS as usize], 68);
    }

    #[test]
    #[should_panic(expected = "40 option bytes")]
    fn too_many_options_panics() {
        let _ = PacketBuilder::new().ipv4_options(11);
    }

    #[test]
    fn frames_meet_minimum_size() {
        let f = PacketBuilder::new().build();
        assert_eq!(f.len(), MIN_FRAME);
    }
}
