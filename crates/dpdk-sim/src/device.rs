//! Simulated NIC device, driver paths, and mbuf mempool.
//!
//! The driver cost sequences below model the ixgbe-style subset the paper
//! analyses: descriptor-ring reads/writes plus device register accesses
//! (`InstrClass::Other`), with simple, branch-light control flow. The
//! exact instruction counts are calibration constants; what matters for
//! the reproduction is that they are (a) identical between the symbolic
//! analysis build and the concrete production build and (b) constant per
//! packet, so they fold into each contract's constant term.

use bolt_trace::{AddressSpace, InstrClass, MemRegion, Tracer};

/// Size of the simulated descriptor ring region (64 descriptors × 16 B).
pub const RING_BYTES: u64 = 64 * 16;
/// Size of the simulated device register window.
pub const REG_BYTES: u64 = 128;

/// Driver receive path: poll the RX descriptor, read status/length, hand
/// the buffer to the NF, replenish the descriptor, bump the tail register.
pub fn rx_costs(t: &mut dyn Tracer, ring: MemRegion, regs: MemRegion) {
    t.instr(InstrClass::Call, 1);
    t.mem_read(ring.addr(0), 8); // descriptor status word
    t.instr(InstrClass::Alu, 4); // status decode
    t.instr(InstrClass::Branch, 1); // DD bit check
    t.mem_read(ring.addr(8), 8); // buffer address + length
    t.instr(InstrClass::Alu, 6); // mbuf metadata setup
    t.mem_write(ring.addr(0), 8); // re-arm descriptor
    t.instr(InstrClass::Other, 1); // RDT register write (uncached I/O)
    t.mem_write(regs.addr(0), 4);
    t.instr(InstrClass::Alu, 5); // ring index arithmetic
    t.instr(InstrClass::Branch, 1); // wrap check
    t.instr(InstrClass::Ret, 1);
}

/// Driver transmit path: write the TX descriptor, update the tail
/// register, reap a completed descriptor.
pub fn tx_costs(t: &mut dyn Tracer, ring: MemRegion, regs: MemRegion) {
    t.instr(InstrClass::Call, 1);
    t.instr(InstrClass::Alu, 6); // descriptor fill
    t.mem_write(ring.addr(16), 8); // TX descriptor write
    t.mem_write(ring.addr(24), 8);
    t.instr(InstrClass::Other, 1); // TDT register write
    t.mem_write(regs.addr(4), 4);
    t.mem_read(ring.addr(32), 8); // reap completion
    t.instr(InstrClass::Alu, 4);
    t.instr(InstrClass::Branch, 1);
    t.instr(InstrClass::Ret, 1);
}

/// Dropping a packet in the driver: no device interaction, just bookkeeping
/// before the mbuf goes back to the pool.
pub fn drop_costs(t: &mut dyn Tracer, pool_meta: MemRegion) {
    t.instr(InstrClass::Call, 1);
    t.instr(InstrClass::Alu, 2);
    t.mem_read(pool_meta.addr(0), 8);
    t.instr(InstrClass::Ret, 1);
}

/// Mempool allocation: pop a buffer from the free ring.
pub fn pool_alloc_costs(t: &mut dyn Tracer, pool_meta: MemRegion) {
    t.instr(InstrClass::Call, 1);
    t.mem_read(pool_meta.addr(0), 8); // free-list head
    t.instr(InstrClass::Alu, 3);
    t.mem_write(pool_meta.addr(0), 8);
    t.instr(InstrClass::Ret, 1);
}

/// Mempool free: push the buffer back.
pub fn pool_free_costs(t: &mut dyn Tracer, pool_meta: MemRegion) {
    t.instr(InstrClass::Call, 1);
    t.instr(InstrClass::Alu, 2);
    t.mem_write(pool_meta.addr(8), 8);
    t.instr(InstrClass::Ret, 1);
}

/// A pool of fixed-size packet buffers, recycled FIFO like an
/// `rte_mempool`.
#[derive(Debug)]
pub struct Mempool {
    buffers: Vec<MemRegion>,
    free: Vec<usize>,
    meta: MemRegion,
    by_base: std::collections::HashMap<u64, usize>,
}

impl Mempool {
    /// Carve `n` buffers of `buf_size` bytes out of `aspace`.
    pub fn new(aspace: &mut AddressSpace, n: usize, buf_size: u64) -> Self {
        assert!(n > 0);
        let meta = aspace.alloc_table(64);
        let buffers: Vec<MemRegion> = (0..n).map(|_| aspace.alloc_table(buf_size)).collect();
        let by_base = buffers
            .iter()
            .enumerate()
            .map(|(i, r)| (r.base, i))
            .collect();
        Mempool {
            free: (0..n).rev().collect(),
            buffers,
            meta,
            by_base,
        }
    }

    /// Number of currently free buffers.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Allocate a buffer (panics if the pool is exhausted — a real NF
    /// sizes its pool to its ring depth).
    pub fn alloc(&mut self, t: &mut dyn Tracer) -> MemRegion {
        pool_alloc_costs(t, self.meta);
        let i = self.free.pop().expect("mempool exhausted");
        self.buffers[i]
    }

    /// Return a buffer to the pool.
    pub fn free(&mut self, t: &mut dyn Tracer, region: MemRegion) {
        pool_free_costs(t, self.meta);
        let &i = self
            .by_base
            .get(&region.base)
            .expect("freeing a region not owned by this pool");
        debug_assert!(!self.free.contains(&i), "double free of mbuf");
        self.free.push(i);
    }
}

/// One simulated NIC port with RX/TX descriptor rings and registers.
#[derive(Debug)]
pub struct NicDevice {
    ring: MemRegion,
    regs: MemRegion,
    /// Packets received.
    pub rx_count: u64,
    /// Packets transmitted.
    pub tx_count: u64,
    /// Packets dropped.
    pub drop_count: u64,
}

impl NicDevice {
    /// Allocate the device's simulated ring and register regions.
    pub fn new(aspace: &mut AddressSpace) -> Self {
        NicDevice {
            ring: aspace.alloc_table(RING_BYTES),
            regs: aspace.alloc_pages(REG_BYTES.max(4096)),
            rx_count: 0,
            tx_count: 0,
            drop_count: 0,
        }
    }

    /// Execute the receive path.
    pub fn rx(&mut self, t: &mut dyn Tracer) {
        self.rx_count += 1;
        rx_costs(t, self.ring, self.regs);
    }

    /// Execute the transmit path.
    pub fn tx(&mut self, t: &mut dyn Tracer) {
        self.tx_count += 1;
        tx_costs(t, self.ring, self.regs);
    }

    /// Execute the drop path.
    pub fn drop(&mut self, t: &mut dyn Tracer) {
        self.drop_count += 1;
        drop_costs(t, self.ring);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_trace::CountingTracer;

    #[test]
    fn mempool_alloc_free_cycle() {
        let mut aspace = AddressSpace::new();
        let mut pool = Mempool::new(&mut aspace, 4, 2048);
        let mut t = CountingTracer::new();
        assert_eq!(pool.available(), 4);
        let a = pool.alloc(&mut t);
        let b = pool.alloc(&mut t);
        assert_ne!(a.base, b.base);
        assert_eq!(pool.available(), 2);
        pool.free(&mut t, a);
        pool.free(&mut t, b);
        assert_eq!(pool.available(), 4);
    }

    #[test]
    #[should_panic(expected = "mempool exhausted")]
    fn mempool_exhaustion_panics() {
        let mut aspace = AddressSpace::new();
        let mut pool = Mempool::new(&mut aspace, 1, 2048);
        let mut t = CountingTracer::new();
        let _ = pool.alloc(&mut t);
        let _ = pool.alloc(&mut t);
    }

    #[test]
    fn driver_paths_have_fixed_cost() {
        let mut aspace = AddressSpace::new();
        let mut nic = NicDevice::new(&mut aspace);
        let cost_of = |nic: &mut NicDevice, which: u8| {
            let mut t = CountingTracer::new();
            match which {
                0 => nic.rx(&mut t),
                1 => nic.tx(&mut t),
                _ => nic.drop(&mut t),
            }
            (t.instructions, t.mem_accesses)
        };
        let rx1 = cost_of(&mut nic, 0);
        let rx2 = cost_of(&mut nic, 0);
        assert_eq!(rx1, rx2, "rx cost must be constant per packet");
        let tx = cost_of(&mut nic, 1);
        let dr = cost_of(&mut nic, 2);
        assert!(tx.0 > dr.0, "tx does more work than drop");
        assert_eq!(nic.rx_count, 2);
        assert_eq!(nic.tx_count, 1);
        assert_eq!(nic.drop_count, 1);
    }
}
