//! DPDK-like packet-processing substrate.
//!
//! The paper's NFs sit on DPDK and an ixgbe NIC driver; BOLT can analyse
//! either the NF alone or the full stack, because the driver subset simple
//! NFs exercise "primarily reads and writes to device registers" and has
//! simple control flow (§3.5). This crate reproduces that substrate in
//! simulation:
//!
//! * [`headers`] — Ethernet/IPv4/L4 field offsets and a packet builder;
//! * [`device`] — a [`device::Mempool`] of reusable mbuf buffers and a
//!   [`device::NicDevice`] whose receive/transmit paths execute an
//!   instrumented descriptor-ring and register-access sequence;
//! * [`Mbuf`] and [`DpdkEnv`] — the per-packet glue that brackets NF logic
//!   with RX/TX driver work and trace markers, at either analysis level
//!   ([`StackLevel::NfOnly`] or [`StackLevel::FullStack`]).
//!
//! The same driver cost sequence runs under both the concrete executor and
//! the symbolic engine, so full-stack contracts include driver work
//! exactly the way the paper's do.

pub mod device;
pub mod headers;

pub use device::{Mempool, NicDevice};

use bolt_see::{ConcreteCtx, NfCtx, NfVerdict, SymbolicCtx};
use bolt_trace::{Marker, MemRegion};

/// Analysis/tracing boundary (§3.5): include the driver or only the NF.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StackLevel {
    /// Only the NF logic between DPDK receive and transmit.
    NfOnly,
    /// NF logic plus DPDK/driver receive and transmit work.
    FullStack,
}

/// A packet buffer handle, DPDK-`rte_mbuf`-style.
#[derive(Clone, Copy, Debug)]
pub struct Mbuf {
    /// Simulated buffer region holding the frame bytes.
    pub region: MemRegion,
    /// Frame length in bytes.
    pub len: u64,
    /// Input port.
    pub port: u16,
}

/// Per-run DPDK environment for **concrete** execution: owns the mempool
/// and NIC, tracks the packet sequence number, and brackets each packet
/// with markers and driver costs.
pub struct DpdkEnv {
    /// Analysis level.
    pub level: StackLevel,
    /// The mbuf pool.
    pub pool: Mempool,
    /// The (single) simulated NIC.
    pub nic: NicDevice,
    seq: u64,
}

impl DpdkEnv {
    /// Build an environment with `n_mbufs` buffers of `buf_size` bytes.
    pub fn new(level: StackLevel, n_mbufs: usize, buf_size: u64) -> Self {
        let mut aspace = bolt_trace::AddressSpace::new();
        let pool = Mempool::new(&mut aspace, n_mbufs, buf_size);
        let nic = NicDevice::new(&mut aspace);
        DpdkEnv {
            level,
            pool,
            nic,
            seq: 0,
        }
    }

    /// Default environment: full stack, 512 mbufs of 2 KB.
    pub fn full_stack() -> Self {
        Self::new(StackLevel::FullStack, 512, 2048)
    }

    /// Default NF-only environment.
    pub fn nf_only() -> Self {
        Self::new(StackLevel::NfOnly, 512, 2048)
    }

    /// Packets processed so far.
    pub fn packets_seen(&self) -> u64 {
        self.seq
    }

    /// Process one packet concretely: receive `bytes` on `port`, run the
    /// NF body, then transmit/drop according to the body's verdict.
    /// Returns the verdict.
    pub fn process_packet<F>(
        &mut self,
        ctx: &mut ConcreteCtx<'_>,
        bytes: &[u8],
        port: u16,
        mut body: F,
    ) -> NfVerdict
    where
        F: FnMut(&mut ConcreteCtx<'_>, Mbuf),
    {
        let seq = self.seq;
        self.seq += 1;
        ctx.tracer().mark(Marker::PacketStart(seq));
        // RX: allocate an mbuf and DMA the frame into it (DMA is free for
        // the CPU; driver descriptor work is charged in rx()).
        let region = self.pool.alloc(ctx.tracer());
        ctx.register_buffer(region, bytes.to_vec());
        let mbuf = Mbuf {
            region,
            len: bytes.len() as u64,
            port,
        };
        if self.level == StackLevel::FullStack {
            self.nic.rx(ctx.tracer());
        }
        ctx.tracer().mark(Marker::NfStart);
        let before = ctx.verdicts().len();
        body(ctx, mbuf);
        let verdict = if ctx.verdicts().len() > before {
            *ctx.verdicts().last().unwrap()
        } else {
            NfVerdict::Drop
        };
        ctx.tracer().mark(Marker::NfEnd);
        if self.level == StackLevel::FullStack {
            match verdict {
                NfVerdict::Forward(_) | NfVerdict::Flood => self.nic.tx(ctx.tracer()),
                NfVerdict::Drop => self.nic.drop(ctx.tracer()),
            }
        }
        self.pool.free(ctx.tracer(), region);
        ctx.tracer().mark(Marker::PacketEnd(seq));
        ctx.tracer().mark(Marker::TxDone);
        verdict
    }
}

impl DpdkEnv {
    /// Process a burst of packets through one NF-body invocation — the
    /// DPDK `rte_rx_burst` → process → `rte_tx_burst` device loop.
    ///
    /// All frames are received first (mbuf allocation + RX descriptor
    /// work per frame), then `body` runs once over the whole mbuf burst
    /// (`NetworkFunction::process_batch` slots in here), then each packet
    /// is transmitted or dropped according to the verdicts the body
    /// emitted — one per mbuf, in order; missing verdicts default to
    /// drop, as in the single-packet path.
    ///
    /// Per-packet markers bracket the RX and TX halves, but the NF body
    /// itself is marked once for the burst: per-packet cycle attribution
    /// inside a burst is intentionally coarse (that is the trade batching
    /// makes).
    pub fn process_burst<F>(
        &mut self,
        ctx: &mut ConcreteCtx<'_>,
        frames: &[(&[u8], u16)],
        body: F,
    ) -> Vec<NfVerdict>
    where
        F: FnOnce(&mut ConcreteCtx<'_>, &mut [Mbuf]),
    {
        let first_seq = self.seq;
        let mut mbufs = Vec::with_capacity(frames.len());
        for (i, (bytes, port)) in frames.iter().enumerate() {
            ctx.tracer().mark(Marker::PacketStart(first_seq + i as u64));
            let region = self.pool.alloc(ctx.tracer());
            ctx.register_buffer(region, bytes.to_vec());
            mbufs.push(Mbuf {
                region,
                len: bytes.len() as u64,
                port: *port,
            });
            if self.level == StackLevel::FullStack {
                self.nic.rx(ctx.tracer());
            }
        }
        self.seq += frames.len() as u64;

        ctx.tracer().mark(Marker::NfStart);
        let before = ctx.verdicts().len();
        body(ctx, &mut mbufs);
        let emitted = &ctx.verdicts()[before..];
        let verdicts: Vec<NfVerdict> = (0..mbufs.len())
            .map(|i| emitted.get(i).copied().unwrap_or(NfVerdict::Drop))
            .collect();
        ctx.tracer().mark(Marker::NfEnd);

        for (i, (mbuf, verdict)) in mbufs.iter().zip(&verdicts).enumerate() {
            if self.level == StackLevel::FullStack {
                match verdict {
                    NfVerdict::Forward(_) | NfVerdict::Flood => self.nic.tx(ctx.tracer()),
                    NfVerdict::Drop => self.nic.drop(ctx.tracer()),
                }
            }
            self.pool.free(ctx.tracer(), mbuf.region);
            ctx.tracer().mark(Marker::PacketEnd(first_seq + i as u64));
        }
        ctx.tracer().mark(Marker::TxDone);
        verdicts
    }
}

/// Symbolic-mode equivalent of [`DpdkEnv::process_packet`]: installs a
/// symbolic packet, charges the same driver costs, runs the body, then
/// charges the verdict-dependent transmit path. Driver register/ring
/// addresses are allocated deterministically inside the symbolic context's
/// own address space, so every explored path sees identical structure.
pub fn sym_process_packet<F>(
    ctx: &mut SymbolicCtx<'_>,
    level: StackLevel,
    pkt_len: u64,
    mut body: F,
) where
    F: FnMut(&mut SymbolicCtx<'_>, Mbuf),
{
    ctx.tracer().mark(Marker::PacketStart(0));
    // Deterministic region layout: ring, registers, then the packet.
    let ring = ctx.alloc_region(device::RING_BYTES);
    let regs = ctx.alloc_region(device::REG_BYTES);
    let mbuf_pool = ctx.alloc_region(64); // pool metadata line
    let region = ctx.packet(pkt_len.max(64));
    let mbuf = Mbuf {
        region,
        len: pkt_len,
        port: 0,
    };
    device::pool_alloc_costs(ctx.tracer(), mbuf_pool);
    if level == StackLevel::FullStack {
        device::rx_costs(ctx.tracer(), ring, regs);
    }
    ctx.tracer().mark(Marker::NfStart);
    body(ctx, mbuf);
    ctx.tracer().mark(Marker::NfEnd);
    let verdict = ctx.last_verdict().unwrap_or(NfVerdict::Drop);
    if level == StackLevel::FullStack {
        match verdict {
            NfVerdict::Forward(_) | NfVerdict::Flood => device::tx_costs(ctx.tracer(), ring, regs),
            NfVerdict::Drop => device::drop_costs(ctx.tracer(), mbuf_pool),
        }
    }
    device::pool_free_costs(ctx.tracer(), mbuf_pool);
    ctx.tracer().mark(Marker::PacketEnd(0));
    ctx.tracer().mark(Marker::TxDone);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_expr::Width;
    use bolt_see::Explorer;
    use bolt_trace::{count_ic_ma, CountingTracer, RecordingTracer};
    use headers as h;

    fn sample_packet() -> Vec<u8> {
        h::PacketBuilder::new()
            .eth(0x0202_0202_0202, 0x0101_0101_0101, h::ETHERTYPE_IPV4)
            .ipv4(0x0a000001, 0x0a000002, h::IPPROTO_UDP, 64)
            .udp(1111, 2222)
            .build()
    }

    #[test]
    fn full_stack_costs_more_than_nf_only() {
        let run = |level: StackLevel| {
            let mut tracer = CountingTracer::new();
            let mut env = DpdkEnv::new(level, 8, 2048);
            let mut ctx = ConcreteCtx::new(&mut tracer);
            env.process_packet(&mut ctx, &sample_packet(), 0, |ctx, mbuf| {
                let et = ctx.load(mbuf.region, h::ETHER_TYPE, 2);
                if ctx.branch_eq_imm(et, h::ETHERTYPE_IPV4 as u64, Width::W16) {
                    ctx.verdict(NfVerdict::Forward(1));
                } else {
                    ctx.verdict(NfVerdict::Drop);
                }
            });
            tracer.instructions
        };
        let full = run(StackLevel::FullStack);
        let nf = run(StackLevel::NfOnly);
        assert!(
            full > nf + 20,
            "driver work must be visible: full={full} nf_only={nf}"
        );
    }

    #[test]
    fn verdict_is_returned_and_drop_defaults() {
        let mut tracer = CountingTracer::new();
        let mut env = DpdkEnv::full_stack();
        let mut ctx = ConcreteCtx::new(&mut tracer);
        let v = env.process_packet(&mut ctx, &sample_packet(), 0, |_, _| {});
        assert_eq!(v, NfVerdict::Drop, "no verdict defaults to drop");
        let v = env.process_packet(&mut ctx, &sample_packet(), 0, |ctx, _| {
            ctx.verdict(NfVerdict::Flood)
        });
        assert_eq!(v, NfVerdict::Flood);
    }

    #[test]
    fn burst_processing_matches_single_packet_verdicts() {
        let nf_body = |ctx: &mut ConcreteCtx<'_>, mbuf: Mbuf| {
            let et = ctx.load(mbuf.region, h::ETHER_TYPE, 2);
            if ctx.branch_eq_imm(et, h::ETHERTYPE_IPV4 as u64, Width::W16) {
                ctx.verdict(NfVerdict::Forward(1));
            } else {
                ctx.verdict(NfVerdict::Drop);
            }
        };
        let ipv4 = sample_packet();
        let v6 = h::PacketBuilder::new().eth(2, 1, h::ETHERTYPE_IPV6).build();
        let frames: Vec<(&[u8], u16)> =
            vec![(&ipv4, 0), (&v6, 1), (&ipv4, 0), (&ipv4, 1), (&v6, 0)];

        let mut t_burst = CountingTracer::new();
        let burst_verdicts = {
            let mut env = DpdkEnv::full_stack();
            let mut ctx = ConcreteCtx::new(&mut t_burst);
            env.process_burst(&mut ctx, &frames, |ctx, mbufs| {
                for m in mbufs.iter() {
                    nf_body(ctx, *m);
                }
            })
        };

        let mut t_single = CountingTracer::new();
        let single_verdicts: Vec<NfVerdict> = {
            let mut env = DpdkEnv::full_stack();
            let mut ctx = ConcreteCtx::new(&mut t_single);
            frames
                .iter()
                .map(|(f, p)| env.process_packet(&mut ctx, f, *p, |ctx, m| nf_body(ctx, m)))
                .collect()
        };
        assert_eq!(burst_verdicts, single_verdicts);
        assert_eq!(
            burst_verdicts,
            vec![
                NfVerdict::Forward(1),
                NfVerdict::Drop,
                NfVerdict::Forward(1),
                NfVerdict::Forward(1),
                NfVerdict::Drop
            ]
        );
        // The burst path does the same driver work per packet.
        assert_eq!(t_burst.instructions, t_single.instructions);
        assert_eq!(t_burst.mem_accesses, t_single.mem_accesses);
    }

    #[test]
    fn burst_missing_verdicts_default_to_drop() {
        let mut t = CountingTracer::new();
        let mut env = DpdkEnv::full_stack();
        let mut ctx = ConcreteCtx::new(&mut t);
        let a = sample_packet();
        let frames: Vec<(&[u8], u16)> = vec![(&a, 0), (&a, 0), (&a, 0)];
        // The body only emits a verdict for the first mbuf.
        let vs = env.process_burst(&mut ctx, &frames, |ctx, _mbufs| {
            ctx.verdict(NfVerdict::Flood);
        });
        assert_eq!(vs, vec![NfVerdict::Flood, NfVerdict::Drop, NfVerdict::Drop]);
    }

    #[test]
    fn mbufs_are_recycled() {
        let mut tracer = CountingTracer::new();
        let mut env = DpdkEnv::new(StackLevel::NfOnly, 2, 2048);
        let mut ctx = ConcreteCtx::new(&mut tracer);
        // More packets than mbufs: must not exhaust the pool.
        for _ in 0..10 {
            env.process_packet(&mut ctx, &sample_packet(), 0, |ctx, _| {
                ctx.verdict(NfVerdict::Drop)
            });
        }
        assert_eq!(env.packets_seen(), 10);
    }

    #[test]
    fn packet_fields_parse_through_ctx() {
        let mut tracer = CountingTracer::new();
        let mut env = DpdkEnv::nf_only();
        let mut ctx = ConcreteCtx::new(&mut tracer);
        env.process_packet(&mut ctx, &sample_packet(), 0, |ctx, mbuf| {
            let et = ctx.load(mbuf.region, h::ETHER_TYPE, 2);
            assert_eq!(ctx.concrete_value(et), Some(h::ETHERTYPE_IPV4 as u64));
            let src = ctx.load(mbuf.region, h::IPV4_SRC, 4);
            assert_eq!(ctx.concrete_value(src), Some(0x0a000001));
            let dport = ctx.load(mbuf.region, h::L4_DPORT, 2);
            assert_eq!(ctx.concrete_value(dport), Some(2222));
            ctx.verdict(NfVerdict::Drop);
        });
    }

    #[test]
    fn symbolic_and_concrete_streams_match_for_same_path() {
        // The same trivial NF, one path: stateless IC/MA must agree between
        // the symbolic path trace and a concrete run.
        let result = Explorer::new().explore(|ctx| {
            sym_process_packet(ctx, StackLevel::FullStack, 64, |ctx, mbuf| {
                let et = ctx.load(mbuf.region, h::ETHER_TYPE, 2);
                if ctx.branch_eq_imm(et, h::ETHERTYPE_IPV4 as u64, Width::W16) {
                    ctx.verdict(NfVerdict::Forward(1));
                } else {
                    ctx.verdict(NfVerdict::Drop);
                }
            });
        });
        assert_eq!(result.paths.len(), 2);

        let mut rec = RecordingTracer::new();
        let mut env = DpdkEnv::full_stack();
        let mut ctx = ConcreteCtx::new(&mut rec);
        env.process_packet(&mut ctx, &sample_packet(), 0, |ctx, mbuf| {
            let et = ctx.load(mbuf.region, h::ETHER_TYPE, 2);
            if ctx.branch_eq_imm(et, h::ETHERTYPE_IPV4 as u64, Width::W16) {
                ctx.verdict(NfVerdict::Forward(1));
            } else {
                ctx.verdict(NfVerdict::Drop);
            }
        });
        let concrete = count_ic_ma(&rec.events);
        // The IPv4 path is the one with a Forward verdict.
        let sym_path = result
            .paths
            .iter()
            .find(|p| p.verdict == Some(NfVerdict::Forward(1)))
            .unwrap();
        let symbolic = count_ic_ma(&sym_path.events);
        assert_eq!(
            concrete, symbolic,
            "analysis build and production build must agree on stateless cost"
        );
    }

    #[test]
    fn markers_present_in_concrete_stream() {
        let mut rec = RecordingTracer::new();
        let mut env = DpdkEnv::full_stack();
        let mut ctx = ConcreteCtx::new(&mut rec);
        env.process_packet(&mut ctx, &sample_packet(), 0, |ctx, _| {
            ctx.verdict(NfVerdict::Drop)
        });
        use bolt_trace::TraceEvent;
        let marks: Vec<Marker> = rec
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Mark(m) => Some(*m),
                _ => None,
            })
            .collect();
        assert!(marks.contains(&Marker::PacketStart(0)));
        assert!(marks.contains(&Marker::NfStart));
        assert!(marks.contains(&Marker::NfEnd));
        assert!(marks.contains(&Marker::PacketEnd(0)));
    }
}
