//! Cross-crate property tests: the conservative hardware model must bound
//! the testbed on arbitrary event streams, and the analysis build must
//! emit exactly the production build's stateless event stream.

use bolt::expr::Width;
use bolt::hw::{ConservativeModel, TestbedModel};
use bolt::see::{ConcreteCtx, Explorer, NfCtx, NfVerdict, StackLevel};
use bolt::trace::{count_ic_ma, InstrClass, RecordingTracer, Tracer};
use dpdk_sim::{headers as h, sym_process_packet, DpdkEnv};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Ev {
    Instr(u8, u8),
    Read(u16, bool),
    Write(u16),
}

fn arb_ev() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0u8..10, 1u8..8).prop_map(|(c, n)| Ev::Instr(c, n)),
        (any::<u16>(), any::<bool>()).prop_map(|(a, d)| Ev::Read(a, d)),
        any::<u16>().prop_map(Ev::Write),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For ANY event stream, conservative cycles ≥ testbed cycles.
    #[test]
    fn conservative_bounds_testbed(evs in prop::collection::vec(arb_ev(), 1..400)) {
        let mut cons = ConservativeModel::new();
        let mut test = TestbedModel::new();
        for ev in &evs {
            for m in [&mut cons as &mut dyn Tracer, &mut test as &mut dyn Tracer] {
                match *ev {
                    Ev::Instr(c, n) => m.instr(InstrClass::ALL[c as usize % 10], n as u32),
                    Ev::Read(a, true) => m.mem_read_dep(0x1_0000 + a as u64 * 8, 8),
                    Ev::Read(a, false) => m.mem_read(0x1_0000 + a as u64 * 8, 8),
                    Ev::Write(a) => m.mem_write(0x1_0000 + a as u64 * 8, 8),
                }
            }
        }
        prop_assert!(
            cons.cycles() >= test.cycles(),
            "bound violated: {} < {}",
            cons.cycles(),
            test.cycles()
        );
    }

    /// The analysis build (symbolic, models linked) and the production
    /// build emit identical stateless IC/MA for the same path, for any
    /// EtherType/TTL combination driving a small NF.
    #[test]
    fn analysis_and_production_streams_agree(ether_type: u16, ttl: u8) {
        // Symbolic exploration of a toy NF: ethertype gate + TTL check.
        let result = Explorer::new().explore(|ctx| {
            sym_process_packet(ctx, StackLevel::FullStack, 64, |ctx, mbuf| {
                let et = ctx.load(mbuf.region, h::ETHER_TYPE, 2);
                if ctx.branch_eq_imm(et, h::ETHERTYPE_IPV4 as u64, Width::W16) {
                    let t = ctx.load(mbuf.region, h::IPV4_TTL, 1);
                    let one = ctx.lit(1, Width::W8);
                    let dead = ctx.ule(t, one);
                    if ctx.branch(dead) {
                        ctx.verdict(NfVerdict::Drop);
                    } else {
                        ctx.verdict(NfVerdict::Forward(1));
                    }
                } else {
                    ctx.verdict(NfVerdict::Drop);
                }
            });
        });
        // Concrete run of the same NF on a packet with the generated
        // fields.
        let frame = h::PacketBuilder::new()
            .eth(2, 1, ether_type)
            .ipv4(1, 2, h::IPPROTO_UDP, ttl)
            .udp(1, 2)
            .build();
        let mut rec = RecordingTracer::new();
        let mut env = DpdkEnv::full_stack();
        let mut cctx = ConcreteCtx::new(&mut rec);
        let verdict = env.process_packet(&mut cctx, &frame, 0, |ctx, mbuf| {
            let et = ctx.load(mbuf.region, h::ETHER_TYPE, 2);
            if ctx.branch_eq_imm(et, h::ETHERTYPE_IPV4 as u64, Width::W16) {
                let t = ctx.load(mbuf.region, h::IPV4_TTL, 1);
                let one = ctx.lit(1, Width::W8);
                let dead = ctx.ule(t, one);
                if ctx.branch(dead) {
                    ctx.verdict(NfVerdict::Drop);
                } else {
                    ctx.verdict(NfVerdict::Forward(1));
                }
            } else {
                ctx.verdict(NfVerdict::Drop);
            }
        });
        let concrete = count_ic_ma(&rec.events);
        // Find the matching symbolic path by the concrete branch outcomes.
        let is_v4 = ether_type == h::ETHERTYPE_IPV4;
        let is_dead = ttl <= 1;
        let matching = result.paths.iter().find(|p| {
            if !is_v4 {
                p.verdict == Some(NfVerdict::Drop) && p.decisions.first() == Some(&false)
            } else if is_dead {
                p.decisions == vec![true, true]
            } else {
                p.verdict == Some(NfVerdict::Forward(1))
            }
        });
        let p = matching.expect("a path must match every input");
        prop_assert_eq!(count_ic_ma(&p.events), concrete);
        // Verdict agreement too.
        prop_assert_eq!(p.verdict, Some(verdict));
    }
}
