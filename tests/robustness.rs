//! Tier-1 robustness checks through the public `bolt` facade: endpoint
//! validation, deterministic fault plans, and store crash-consistency
//! at every truncation boundary. The heavyweight torture suites live in
//! `crates/store/tests/torture.rs` and
//! `crates/serve/tests/fault_resilience.rs`; this file pins the same
//! guarantees at the umbrella-crate surface, fast enough for tier 1.

use std::time::Duration;

use bolt::fault::{site, FaultPlan, XorShift64};
use bolt::serve::Endpoint;
use bolt::store::{ContractStore, Fingerprint, RecordKind};

#[test]
fn endpoint_specs_validate_up_front() {
    for bad in ["", "  ", "tcp:", "tcp:hostonly", "tcp::1", "tcp:h:porty"] {
        assert!(Endpoint::parse(bad).is_err(), "{bad:?} must be rejected");
    }
    for good in ["tcp:127.0.0.1:80", "tcp:[::1]:80", "/run/bolt.sock"] {
        let ep = Endpoint::parse(good).unwrap();
        assert_eq!(Endpoint::parse(&ep.to_string()).unwrap(), ep);
    }
}

#[test]
fn fault_plans_are_deterministic_and_site_independent() {
    let roll = |seed: u64| {
        let plan = FaultPlan::seeded(seed)
            .with_prob(site::STORE_READ, 0.5)
            .with_prob(site::SERVE_WRITE_ERR, 0.5);
        (0..64)
            .map(|_| {
                (
                    plan.fires(site::STORE_READ),
                    plan.fires(site::SERVE_WRITE_ERR),
                )
            })
            .collect::<Vec<_>>()
    };
    // Same seed ⇒ identical schedule; different seed ⇒ a different one.
    assert_eq!(roll(1), roll(1));
    assert_ne!(roll(1), roll(2));
    // One-shot schedules fire exactly on the named call.
    let plan = FaultPlan::seeded(9).with_at(site::STORE_RENAME, 3);
    let fired: Vec<bool> = (0..5).map(|_| plan.fires(site::STORE_RENAME)).collect();
    assert_eq!(fired, [false, false, true, false, false]);
    assert_eq!(plan.injected(), 1);
    // The stall knob survives the builder chain.
    let plan = FaultPlan::seeded(9).with_stall(Duration::from_millis(7));
    assert_eq!(plan.stall(), Duration::from_millis(7));
    // The raw generator is reproducible too (it also jitters client
    // backoff, where reproducibility aids debugging).
    let mut a = XorShift64::new(42);
    let mut b = XorShift64::new(42);
    assert_eq!(a.next_u64(), b.next_u64());
}

#[test]
fn torn_records_read_as_misses_and_heal_on_reput() {
    let dir = std::env::temp_dir().join(format!("bolt-robustness-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ContractStore::with_faults(&dir, None).unwrap();
    let fp = Fingerprint(0xFEED);
    let payload = b"contract bytes that must never be served torn".to_vec();
    store
        .put(fp, RecordKind::Exploration, "nf", 1, 2, &payload)
        .unwrap();
    let file = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().and_then(|e| e.to_str()) == Some("bolt"))
        .expect("one record file");
    let full = std::fs::read(&file).unwrap();
    // Sample boundaries (every 7th byte + the edges) keep this fast for
    // tier 1; the store crate's torture test cuts at every byte.
    let cuts: Vec<usize> = (0..full.len())
        .step_by(7)
        .chain([0, full.len() - 1])
        .collect();
    for cut in cuts {
        std::fs::write(&file, &full[..cut]).unwrap();
        assert!(store.get(fp, RecordKind::Exploration).is_none());
    }
    store
        .put(fp, RecordKind::Exploration, "nf", 1, 2, &payload)
        .unwrap();
    assert_eq!(
        store.get(fp, RecordKind::Exploration).as_deref(),
        Some(payload.as_slice())
    );
    // A reopen quarantines scratch debris and keeps the healed record.
    std::fs::write(dir.join(".dead.exp.tmp.1.1"), b"x").unwrap();
    let reopened = ContractStore::with_faults(&dir, None).unwrap();
    assert_eq!(reopened.quarantined(), 1);
    assert!(reopened.get(fp, RecordKind::Exploration).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}
