//! The unified NF API: parity with the legacy free-function plumbing,
//! and chain composition through `Pipeline` trait objects.
//!
//! The `NetworkFunction` trait's blanket `explore`/`contract` must be a
//! drop-in replacement for the per-NF `explore()` free functions it
//! deprecates: same feasible paths, same per-path cost expressions for
//! every metric. The Pipeline chain must reproduce the §5.2
//! firewall→router composition result checked in `conservatism.rs` /
//! `crates/core/tests/chain.rs`.

#![allow(deprecated)] // the point of this test is legacy parity

use bolt::core::nf::Contract;
use bolt::core::NfContract;
use bolt::expr::PcvAssignment;
use bolt::nfs::{
    bridge, example_router, firewall, lb, lpm_router, nat, static_router, Bridge, ExampleRouter,
    Firewall, LoadBalancer, LpmRouter, Nat, StaticRouter,
};
use bolt::see::StackLevel;
use bolt::trace::Metric;
use bolt::{Bolt, Pipeline};

/// Both pipelines must agree path-for-path on every metric's expression,
/// tags, and verdicts.
fn assert_parity<I>(name: &str, fluent: Contract<I>, legacy: NfContract) {
    assert_eq!(
        fluent.paths().len(),
        legacy.paths.len(),
        "{name}: path count diverged"
    );
    for (f, l) in fluent.paths().iter().zip(&legacy.paths) {
        assert_eq!(f.tags, l.tags, "{name}: tags diverged at path {}", f.index);
        assert_eq!(
            f.verdict, l.verdict,
            "{name}: verdict diverged at path {}",
            f.index
        );
        for m in Metric::ALL {
            assert_eq!(
                f.expr(m),
                l.expr(m),
                "{name}: {m} expression diverged at path {}",
                f.index
            );
        }
    }
}

fn legacy_contract(
    reg: &nf_lib::registry::DsRegistry,
    e: bolt::see::ExplorationResult,
) -> NfContract {
    bolt::core::generate(reg, e)
}

#[test]
fn bridge_trait_matches_legacy_explore() {
    let nf = Bridge::default();
    let fluent = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    let (reg, _, e) = bridge::explore(&nf.cfg, StackLevel::FullStack);
    assert_parity("bridge", fluent, legacy_contract(&reg, e));
}

#[test]
fn example_router_trait_matches_legacy_explore() {
    let fluent = Bolt::nf(ExampleRouter::default())
        .explore(StackLevel::FullStack)
        .contract();
    let (reg, _, e) = example_router::explore(StackLevel::FullStack);
    assert_parity("example_router", fluent, legacy_contract(&reg, e));
}

#[test]
fn firewall_trait_matches_legacy_explore() {
    let nf = Firewall::default();
    let fluent = Bolt::nf(nf.clone())
        .explore(StackLevel::FullStack)
        .contract();
    let (reg, e) = firewall::explore(&nf.cfg, StackLevel::FullStack);
    assert_parity("firewall", fluent, legacy_contract(&reg, e));
}

#[test]
fn static_router_trait_matches_legacy_explore() {
    let fluent = Bolt::nf(StaticRouter::default())
        .explore(StackLevel::FullStack)
        .contract();
    let (reg, e) = static_router::explore(StackLevel::FullStack);
    assert_parity("static_router", fluent, legacy_contract(&reg, e));
}

#[test]
fn lpm_router_trait_matches_legacy_explore() {
    let fluent = Bolt::nf(LpmRouter::default())
        .explore(StackLevel::FullStack)
        .contract();
    let (reg, _, e) = lpm_router::explore(StackLevel::FullStack);
    assert_parity("lpm_router", fluent, legacy_contract(&reg, e));
}

#[test]
fn nat_trait_matches_legacy_explore() {
    for kind in [nat::AllocKind::A, nat::AllocKind::B] {
        let nf = Nat::with(nat::NatConfig::default(), kind);
        let fluent = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
        let (reg, _, e) = nat::explore(&nf.cfg, kind, StackLevel::FullStack);
        assert_parity("nat", fluent, legacy_contract(&reg, e));
    }
}

#[test]
fn lb_trait_matches_legacy_explore() {
    let nf = LoadBalancer::default();
    let fluent = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    let (reg, _, e) = lb::explore(&nf.cfg, StackLevel::FullStack);
    assert_parity("lb", fluent, legacy_contract(&reg, e));
}

#[test]
fn all_seven_nfs_expose_names_through_the_trait() {
    // The object-safe view (used by Pipeline) covers every NF.
    let nfs: Vec<Box<dyn bolt::AbstractNf>> = vec![
        Box::new(Bridge::default()),
        Box::new(ExampleRouter::default()),
        Box::new(Firewall::default()),
        Box::new(LoadBalancer::default()),
        Box::new(LpmRouter::default()),
        Box::new(Nat::default()),
        Box::new(StaticRouter::default()),
    ];
    let names: Vec<&str> = nfs.iter().map(|n| n.name()).collect();
    assert_eq!(
        names,
        vec![
            "bridge",
            "example_router",
            "firewall",
            "lb",
            "lpm_router",
            "nat",
            "static_router"
        ]
    );
}

/// The chunked default `process_batch` must emit exactly the verdicts of
/// the plain per-packet loop, in order — the invariant every overriding
/// burst implementation has to preserve. 100 frames = three full
/// 32-packet chunks plus a ragged 4-packet tail.
#[test]
fn chunked_process_batch_matches_plain_loop() {
    use bolt::dpdk::{headers as h, DpdkEnv};
    use bolt::see::{ConcreteCtx, NfVerdict};
    use bolt::trace::{AddressSpace, CountingTracer};
    use bolt::NetworkFunction;
    use nf_lib::clock::{Clock, Granularity};

    fn frame(dst: u64, src: u64) -> Vec<u8> {
        h::PacketBuilder::new()
            .eth(dst, src, h::ETHERTYPE_IPV4)
            .ipv4(0x0a000001, 0x0a000002, h::IPPROTO_UDP, 64)
            .udp(10, 20)
            .build()
    }

    // A bridging workload whose verdicts are order-sensitive: floods
    // while destinations are unknown, forwards once learned, with
    // periodic broadcasts.
    let frames: Vec<(Vec<u8>, u16)> = (0..100u64)
        .map(|i| {
            let src = 0xA0 + (i % 10);
            let dst = if i % 7 == 0 {
                bolt::nfs::bridge::BROADCAST_MAC
            } else {
                0xA0 + ((i + 1) % 10)
            };
            (frame(dst, src), (i % 4) as u16)
        })
        .collect();

    let run = |batched: bool| -> Vec<NfVerdict> {
        let nf = Bridge::default();
        let mut reg = nf_lib::registry::DsRegistry::new();
        let ids = NetworkFunction::register(&nf, &mut reg);
        let mut aspace = AddressSpace::new();
        let mut state = nf.state(ids, &mut aspace);
        let mut env = DpdkEnv::full_stack();
        let mut tracer = CountingTracer::new();
        let mut ctx = ConcreteCtx::new(&mut tracer);
        let clock = Clock::new(Granularity::Milliseconds);
        let refs: Vec<(&[u8], u16)> = frames.iter().map(|(f, p)| (f.as_slice(), *p)).collect();
        env.process_burst(&mut ctx, &refs, |ctx, mbufs| {
            if batched {
                nf.process_batch(ctx, &mut state, &clock, mbufs);
            } else {
                for mbuf in mbufs.iter() {
                    nf.process(ctx, &mut state, &clock, *mbuf);
                }
            }
        })
    };

    let chunked = run(true);
    let plain = run(false);
    assert_eq!(chunked.len(), 100);
    assert_eq!(chunked, plain, "chunked burst must preserve verdict order");
    // The workload actually exercises more than one verdict kind.
    assert!(chunked.iter().any(|v| matches!(v, NfVerdict::Flood)));
    assert!(chunked.iter().any(|v| matches!(v, NfVerdict::Forward(_))));
}

#[test]
fn pipeline_reproduces_the_firewall_router_chain() {
    // The §5.2 composition result, via trait objects: the composed
    // contract masks the router's option paths and beats naive addition.
    let pipeline = Pipeline::new()
        .push(Firewall::default())
        .push(StaticRouter::default());
    let chain = pipeline.contract(StackLevel::NfOnly).unwrap();
    let env = PcvAssignment::new();
    for p in &chain.paths {
        assert!(
            !(p.has_tag("no-options") && p.has_tag("ip-options")),
            "firewall-accepted traffic must not reach router option paths"
        );
    }
    let composed_worst = chain
        .paths
        .iter()
        .map(|p| p.expr(Metric::Instructions).eval(&env))
        .max()
        .unwrap();
    let naive = pipeline.naive_add(StackLevel::NfOnly, Metric::Instructions, &env);
    assert!(
        composed_worst < naive,
        "composition must beat naive addition: {composed_worst} vs {naive}"
    );
}
