//! Composed-chain contracts, end to end: a composed fw→router contract
//! must round-trip bit-identically through the contract codec at both
//! stack levels and answer `query()` exactly like the fresh composition;
//! parallel composition must be byte-identical to sequential; a
//! store-aware chain run must be fully solver-free when warm; and
//! changing one stage's configuration must miss the composed record
//! (stale-stage invalidation), never serve it.

use bolt::core::chain::ChainReport;
use bolt::core::store::{compose_key, store_key, StoreExt};
use bolt::core::{
    decode_contract, encode_contract, Composer, ContractStore, InputClass, NfContract, Pipeline,
};
use bolt::expr::PcvAssignment;
use bolt::nfs::firewall::FirewallConfig;
use bolt::nfs::{Firewall, StaticRouter};
use bolt::see::StackLevel;
use bolt::solver::{Solver, SolverCache, SolverStats};
use bolt::trace::Metric;
use bolt::NetworkFunction;

fn temp_store(tag: &str) -> ContractStore {
    let dir = std::env::temp_dir().join(format!("bolt-chain-rt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ContractStore::open(dir).unwrap()
}

/// The paper's §5.2 chain, composed fresh (no store).
fn fw_router(level: StackLevel) -> NfContract {
    let fw = Firewall::default().explore(level).contract().into_inner();
    let rt = StaticRouter::default()
        .explore(level)
        .contract()
        .into_inner();
    let solver = Solver::default();
    Composer::new(&solver).compose(&fw, &rt)
}

fn assert_contract_identical(name: &str, a: &NfContract, b: &NfContract) {
    assert_eq!(a.pool.nodes(), b.pool.nodes(), "{name}: term arena");
    assert_eq!(a.pool.sym_count(), b.pool.sym_count(), "{name}: symbols");
    for (x, y) in a.pool.sym_entries().zip(b.pool.sym_entries()) {
        assert_eq!(x, y, "{name}: symbol entry");
    }
    assert_eq!(a.paths.len(), b.paths.len(), "{name}: path count");
    for (p, q) in a.paths.iter().zip(&b.paths) {
        assert_eq!(p.index, q.index, "{name}: index");
        assert_eq!(p.constraints, q.constraints, "{name}: constraints");
        assert_eq!(p.tags, q.tags, "{name}: tags");
        assert_eq!(p.verdict, q.verdict, "{name}: verdict");
        for m in Metric::ALL {
            assert_eq!(p.expr(m), q.expr(m), "{name}: {m} expression");
        }
        assert_eq!(p.packet_fields, q.packet_fields, "{name}: fields");
        assert_eq!(p.final_packet, q.final_packet, "{name}: final packet");
    }
}

/// decode(encode(·)) of a composed fw→router contract is bit-identical
/// at both stack levels, and re-encoding reproduces the exact bytes.
#[test]
fn composed_contract_codec_round_trips_bit_identically() {
    for level in [StackLevel::NfOnly, StackLevel::FullStack] {
        let fresh = fw_router(level);
        let bytes = encode_contract(&fresh);
        let decoded = decode_contract(&bytes)
            .unwrap_or_else(|e| panic!("{level:?}: composed contract decode failed: {e}"));
        assert_contract_identical(&format!("fw->rt/{level:?}"), &fresh, &decoded);
        assert_eq!(encode_contract(&decoded), bytes, "{level:?}: re-encode");
    }
}

/// Decoded composed contracts answer `query()` identically to fresh
/// ones — same worst path, value, and expression — for the §5.2 traffic
/// classes at both stack levels.
#[test]
fn decoded_composed_contracts_query_identically() {
    let solver = Solver::default();
    let env = PcvAssignment::new();
    let classes = [
        InputClass::new("no-options", bolt::core::ClassSpec::Tag("no-options")),
        InputClass::new("ip-options", bolt::core::ClassSpec::Tag("ip-options")),
        InputClass::unconstrained(),
    ];
    for level in [StackLevel::NfOnly, StackLevel::FullStack] {
        let mut fresh = fw_router(level);
        let mut decoded = decode_contract(&encode_contract(&fresh)).unwrap();
        for class in &classes {
            assert_eq!(
                fresh.compatible_paths(&solver, class),
                decoded.compatible_paths(&solver, class),
                "{level:?}/{}: compatible paths",
                class.name
            );
            for m in Metric::ALL {
                let a = fresh.query(&solver, class, m, &env);
                let b = decoded.query(&solver, class, m, &env);
                let key = |q: &Option<bolt::core::QueryResult>| {
                    q.as_ref().map(|r| (r.path_index, r.value, r.expr.clone()))
                };
                assert_eq!(key(&a), key(&b), "{level:?}/{}/{m}", class.name);
            }
        }
        // The §5.2 result itself: composed no-options worst case beats
        // the IP-options path, which the firewall masks entirely.
        let opts = fresh.query(&solver, &classes[1], Metric::Instructions, &env);
        if let Some(q) = &opts {
            assert!(
                fresh.paths[q.path_index].verdict == Some(bolt::see::NfVerdict::Drop),
                "{level:?}: any ip-options path in the chain must be the firewall drop"
            );
        }
    }
}

/// Parallel composition is byte-identical to sequential on the real
/// fw→router pair — contract bytes and compose solver counters both —
/// at 2, 3, and 8 worker threads.
#[test]
fn parallel_composition_matches_sequential_on_real_nfs() {
    let level = StackLevel::FullStack;
    let fw = Firewall::default().explore(level).contract().into_inner();
    let rt = StaticRouter::default()
        .explore(level)
        .contract()
        .into_inner();
    let solver = Solver::default();
    let mut seq_cache = SolverCache::new();
    let seq = Composer::new(&solver)
        .cache(&mut seq_cache)
        .threads(1)
        .compose(&fw, &rt);
    let seq_bytes = encode_contract(&seq);
    for threads in [2, 3, 8] {
        let mut cache = SolverCache::new();
        let par = Composer::new(&solver)
            .cache(&mut cache)
            .threads(threads)
            .compose(&fw, &rt);
        assert_eq!(
            encode_contract(&par),
            seq_bytes,
            "composition at {threads} threads diverged from sequential"
        );
        assert_eq!(
            cache.stats, seq_cache.stats,
            "compose counters diverged at {threads} threads"
        );
    }
}

fn fw_rt_pipeline() -> Pipeline<'static> {
    Pipeline::new()
        .push(Firewall::default())
        .push(StaticRouter::default())
}

fn assert_fully_cached(rep: &ChainReport) {
    assert_eq!(rep.steps_composed, 0, "warm run must compose nothing");
    assert_eq!(rep.stages_explored, 0, "warm run must explore nothing");
    assert_eq!(
        rep.solver,
        SolverStats::default(),
        "warm run must issue zero compose solver requests"
    );
    assert!(rep.fully_cached());
}

/// A store-aware chain run: the cold pass explores both stages and
/// composes one fold step; the warm pass decodes the composed record —
/// zero explorations, zero compose solver queries — and its contract is
/// byte-identical to the cold composition.
#[test]
fn warm_chain_runs_are_fully_solver_free() {
    let store = temp_store("warm");
    let level = StackLevel::FullStack;
    let cold = fw_rt_pipeline().with_store(&store).report(level).unwrap();
    assert_eq!(cold.stages_explored, 2, "cold run explores both stages");
    assert_eq!(cold.steps_composed, 1, "cold run composes the fold step");
    assert_eq!(cold.steps_cached, 0);
    assert!(
        cold.solver.checks_requested > 0,
        "cold composition must do solver work"
    );

    let warm = fw_rt_pipeline().with_store(&store).report(level).unwrap();
    assert_fully_cached(&warm);
    assert_eq!(warm.steps_cached, 1, "the composed record answers the fold");
    assert_eq!(warm.stages_cached, 0, "stage contracts are never touched");
    assert_eq!(
        encode_contract(&warm.contract),
        encode_contract(&cold.contract),
        "cached and fresh composition must be byte-identical"
    );

    // The composed record sits under the chain key, beside (not instead
    // of) the per-stage exploration records.
    let key = fw_rt_pipeline().chain_key(level).unwrap();
    assert!(store.get_composed(key).is_some());
    assert_eq!(
        key,
        compose_key(
            store_key(&Firewall::default(), level),
            store_key(&StaticRouter::default(), level),
            level
        )
    );
    let _ = std::fs::remove_dir_all(store.dir());
}

/// A three-stage chain memoizes every fold step: the warm run decodes
/// only the final composed record (the intermediate one stays on disk
/// for prefix reuse), still fully solver-free.
#[test]
fn longer_chains_memoize_every_fold_step() {
    let store = temp_store("triple");
    let level = StackLevel::NfOnly;
    let build = || {
        Pipeline::new()
            .push(Firewall::default())
            .push(Firewall::default())
            .push(StaticRouter::default())
    };
    let cold = build().with_store(&store).report(level).unwrap();
    assert_eq!(cold.steps_composed, 2, "two fold steps compose fresh");
    let warm = build().with_store(&store).report(level).unwrap();
    assert_fully_cached(&warm);
    assert_eq!(
        warm.steps_cached, 1,
        "the final composed record short-circuits the whole fold"
    );
    assert_eq!(
        encode_contract(&warm.contract),
        encode_contract(&cold.contract)
    );
    // A chain sharing the two-stage prefix reuses the intermediate
    // record: only its own final step composes.
    let extended = Pipeline::new()
        .push(Firewall::default())
        .push(Firewall::default())
        .with_store(&store)
        .report(level)
        .unwrap();
    assert_fully_cached(&extended);
    assert_eq!(extended.steps_cached, 1, "prefix record reused");
    let _ = std::fs::remove_dir_all(store.dir());
}

/// Changing one stage's configuration changes its stage fingerprint and
/// therefore the composed key: the stale composed record misses and the
/// chain re-composes (nothing stale is ever served).
#[test]
fn stale_stage_fingerprint_invalidates_composed_records() {
    let store = temp_store("stale");
    let level = StackLevel::NfOnly;
    let cold = fw_rt_pipeline().with_store(&store).report(level).unwrap();
    assert_eq!(cold.steps_composed, 1);
    // Same chain shape, different firewall config: one more accept rule.
    let mut cfg = FirewallConfig::default();
    cfg.rules.insert(0, (0xC0A80100, 24, 8080));
    let changed = || {
        Pipeline::new()
            .push(Firewall::with(cfg.clone()))
            .push(StaticRouter::default())
    };
    assert_ne!(
        changed().chain_key(level),
        fw_rt_pipeline().chain_key(level),
        "a changed stage config must move the composed key"
    );
    let recomposed = changed().with_store(&store).report(level).unwrap();
    assert_eq!(
        recomposed.steps_cached, 0,
        "the stale composed record must miss"
    );
    assert_eq!(recomposed.steps_composed, 1);
    assert_eq!(
        recomposed.stages_cached, 1,
        "the unchanged router stage still hits its exploration record"
    );
    assert_eq!(
        recomposed.stages_explored, 1,
        "the reconfigured firewall re-explores"
    );
    // And the new composition is itself memoized.
    let warm = changed().with_store(&store).report(level).unwrap();
    assert_fully_cached(&warm);
    let _ = std::fs::remove_dir_all(store.dir());
}
