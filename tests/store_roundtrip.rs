//! The persistent contract store, end to end: every NF at both stack
//! levels must round-trip bit-identically through the exploration and
//! contract codecs, warm store runs must perform zero explorations and
//! zero solver queries, decoded contracts must answer queries exactly
//! like fresh ones, and corrupt or version-skewed records must be
//! rejected (re-explored), never trusted.

use bolt::core::nf::NetworkFunction;
use bolt::core::store::{level_tag, store_key, RecordKind, StoreExt};
use bolt::core::{decode_contract, encode_contract, ContractStore, NfContract};
use bolt::expr::PcvAssignment;
use bolt::nfs::{nat, Bridge, ExampleRouter, Firewall, LoadBalancer, LpmRouter, Nat, StaticRouter};
use bolt::see::codec::{decode_result, encode_result};
use bolt::see::{ExplorationResult, StackLevel};
use bolt::trace::Metric;
use bolt::Bolt;

/// An NF variant boxed as an exploration thunk.
type NfThunk = Box<dyn Fn(StackLevel) -> ExplorationResult>;

/// All bench/test NF variants.
fn all_nfs() -> Vec<(&'static str, NfThunk)> {
    vec![
        ("bridge", Box::new(|l| Bridge::default().explore(l).result)),
        (
            "example_router",
            Box::new(|l| ExampleRouter::default().explore(l).result),
        ),
        (
            "firewall",
            Box::new(|l| Firewall::default().explore(l).result),
        ),
        (
            "lb",
            Box::new(|l| LoadBalancer::default().explore(l).result),
        ),
        (
            "lpm_router",
            Box::new(|l| LpmRouter::default().explore(l).result),
        ),
        (
            "nat_a",
            Box::new(|l| {
                Nat::with(nat::NatConfig::default(), nat::AllocKind::A)
                    .explore(l)
                    .result
            }),
        ),
        (
            "nat_b",
            Box::new(|l| {
                Nat::with(nat::NatConfig::default(), nat::AllocKind::B)
                    .explore(l)
                    .result
            }),
        ),
        (
            "static_router",
            Box::new(|l| StaticRouter::default().explore(l).result),
        ),
    ]
}

fn temp_store(tag: &str) -> ContractStore {
    let dir = std::env::temp_dir().join(format!("bolt-rt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ContractStore::open(dir).unwrap()
}

fn assert_result_identical(name: &str, a: &ExplorationResult, b: &ExplorationResult) {
    assert_eq!(a.pool.nodes(), b.pool.nodes(), "{name}: term arena");
    assert_eq!(a.pool.sym_count(), b.pool.sym_count(), "{name}: symbols");
    for (x, y) in a.pool.sym_entries().zip(b.pool.sym_entries()) {
        assert_eq!(x, y, "{name}: symbol entry");
    }
    assert_eq!(a.paths.len(), b.paths.len(), "{name}: path count");
    for (i, (p, q)) in a.paths.iter().zip(&b.paths).enumerate() {
        assert_eq!(p.constraints, q.constraints, "{name}[{i}]: constraints");
        assert_eq!(p.events, q.events, "{name}[{i}]: events");
        assert_eq!(p.tags, q.tags, "{name}[{i}]: tags");
        assert_eq!(p.verdict, q.verdict, "{name}[{i}]: verdict");
        assert_eq!(p.packet_fields, q.packet_fields, "{name}[{i}]: fields");
        assert_eq!(p.final_packet, q.final_packet, "{name}[{i}]: final packet");
        assert_eq!(p.decisions, q.decisions, "{name}[{i}]: decisions");
    }
    assert_eq!(a.stats, b.stats, "{name}: stats");
    assert_eq!(a.truncated, b.truncated, "{name}: truncation marker");
}

/// decode(encode(exploration)) is bit-identical — paths, constraints,
/// events, tags, verdicts, stats, truncation — for all 8 NF variants at
/// both stack levels, and re-encoding reproduces the exact bytes.
#[test]
fn exploration_codec_round_trips_all_nfs_bit_identically() {
    for (name, explore) in all_nfs() {
        for level in [StackLevel::NfOnly, StackLevel::FullStack] {
            let fresh = explore(level);
            let bytes = encode_result(&fresh);
            let decoded = decode_result(&bytes)
                .unwrap_or_else(|e| panic!("{name}/{level:?}: decode failed: {e}"));
            assert_result_identical(name, &fresh, &decoded);
            assert_eq!(
                encode_result(&decoded),
                bytes,
                "{name}/{level:?}: re-encode"
            );
        }
    }
}

fn assert_contract_identical(name: &str, a: &NfContract, b: &NfContract) {
    assert_eq!(a.paths.len(), b.paths.len(), "{name}: path count");
    for (p, q) in a.paths.iter().zip(&b.paths) {
        assert_eq!(p.index, q.index, "{name}: index");
        assert_eq!(p.constraints, q.constraints, "{name}: constraints");
        assert_eq!(p.tags, q.tags, "{name}: tags");
        assert_eq!(p.verdict, q.verdict, "{name}: verdict");
        for m in Metric::ALL {
            assert_eq!(p.expr(m), q.expr(m), "{name}: {m} expression");
        }
    }
}

/// Contracts generated from decoded explorations — and contracts pushed
/// through the contract codec — answer `query(...)` bit-identically to
/// fresh ones: same worst path, same value, same expression, same IC/MA/
/// cycles, for every NF at both levels.
#[test]
fn decoded_contracts_query_identically_for_all_nfs() {
    let solver = bolt::solver::Solver::default();
    let env = PcvAssignment::new();
    for (name, explore) in all_nfs() {
        for level in [StackLevel::NfOnly, StackLevel::FullStack] {
            let fresh_result = explore(level);
            let bytes = encode_result(&fresh_result);
            let decoded_result = decode_result(&bytes).unwrap();
            // Registries are rebuilt deterministically; an empty one is
            // fine here because `generate` only resolves stateful calls,
            // which both sides replay from identical events. Use the
            // real registry path via a second fresh exploration instead.
            let mut fresh = {
                let (reg, result) = (regenerate_reg(name), fresh_result);
                bolt::core::generate(&reg, result)
            };
            let mut decoded = {
                let reg = regenerate_reg(name);
                bolt::core::generate(&reg, decoded_result)
            };
            assert_contract_identical(name, &fresh, &decoded);
            // And through the contract codec as well.
            let cbytes = encode_contract(&fresh);
            let mut reloaded = decode_contract(&cbytes).unwrap();
            assert_contract_identical(name, &fresh, &reloaded);
            // Worst-case queries agree on the unconstrained class.
            let class = bolt::core::InputClass::unconstrained();
            for m in Metric::ALL {
                let a = fresh.query(&solver, &class, m, &env);
                let b = decoded.query(&solver, &class, m, &env);
                let c = reloaded.query(&solver, &class, m, &env);
                let key = |q: &Option<bolt::core::QueryResult>| {
                    q.as_ref().map(|r| (r.path_index, r.value, r.expr.clone()))
                };
                assert_eq!(key(&a), key(&b), "{name}/{level:?}/{m}");
                assert_eq!(key(&a), key(&c), "{name}/{level:?}/{m}");
            }
        }
    }
}

/// Rebuild the registry an NF variant registers against (registration is
/// deterministic, so this matches the exploration-time registry).
fn regenerate_reg(name: &str) -> nf_lib::registry::DsRegistry {
    let mut reg = nf_lib::registry::DsRegistry::new();
    match name {
        "bridge" => {
            Bridge::default().register(&mut reg);
        }
        "example_router" => {
            ExampleRouter::default().register(&mut reg);
        }
        "firewall" => Firewall::default().register(&mut reg),
        "lb" => {
            LoadBalancer::default().register(&mut reg);
        }
        "lpm_router" => {
            LpmRouter::default().register(&mut reg);
        }
        "nat_a" => {
            Nat::with(nat::NatConfig::default(), nat::AllocKind::A).register(&mut reg);
        }
        "nat_b" => {
            Nat::with(nat::NatConfig::default(), nat::AllocKind::B).register(&mut reg);
        }
        "static_router" => StaticRouter::default().register(&mut reg),
        other => panic!("unknown NF {other}"),
    }
    reg
}

/// The warm path: a second `get_or_explore` against a populated store
/// performs zero explorations and zero solver queries — every scenario
/// is served from disk (`cached == true`, store hit counters advance,
/// and no fresh `ExploreStats` are minted because the explorer never
/// runs).
#[test]
fn warm_store_runs_perform_zero_explorations() {
    let store = temp_store("warm");

    // Cold pass: everything misses, explores, and is persisted.
    let bridge = Bridge::default();
    let nat = Nat::with(nat::NatConfig::default(), nat::AllocKind::A);
    let lpm = LpmRouter::default();
    let mut cold_paths = Vec::new();
    for level in [StackLevel::NfOnly, StackLevel::FullStack] {
        let e = store.get_or_explore(&bridge, level);
        assert!(!e.cached, "cold run must explore");
        cold_paths.push(e.result.paths.len());
        let e = store.get_or_explore(&nat, level);
        assert!(!e.cached);
        cold_paths.push(e.result.paths.len());
        let e = store.get_or_explore(&lpm, level);
        assert!(!e.cached);
        cold_paths.push(e.result.paths.len());
    }
    assert_eq!(store.misses(), 6);
    assert_eq!(store.hits(), 0);

    // Warm pass: zero explorations — every result is decoded from disk.
    let mut warm_paths = Vec::new();
    for level in [StackLevel::NfOnly, StackLevel::FullStack] {
        let e = store.get_or_explore(&bridge, level);
        assert!(e.cached, "warm run must not explore");
        warm_paths.push(e.result.paths.len());
        let e = store.get_or_explore(&nat, level);
        assert!(e.cached);
        warm_paths.push(e.result.paths.len());
        let e = store.get_or_explore(&lpm, level);
        assert!(e.cached);
        warm_paths.push(e.result.paths.len());
    }
    assert_eq!(store.hits(), 6, "all six scenarios served from disk");
    assert_eq!(cold_paths, warm_paths);

    // The fluent path honours an attached store the same way.
    let e = Bolt::nf(Bridge::default())
        .with_store(&store)
        .explore(StackLevel::FullStack);
    assert!(e.cached, "Bolt::with_store must consult the store");

    // And a decoded exploration still generates a working contract whose
    // stats equal the stored (cold-run) stats bit-for-bit.
    let fresh = Bridge::default().explore(StackLevel::FullStack);
    let warm = store.get_or_explore(&bridge, StackLevel::FullStack);
    assert_result_identical("bridge-warm", &fresh.result, &warm.result);

    let _ = std::fs::remove_dir_all(store.dir());
}

/// Distinct configs and levels get distinct keys; identical ones share.
#[test]
fn store_keys_are_config_sensitive() {
    let a = store_key(&Bridge::default(), StackLevel::FullStack);
    let b = store_key(&Bridge::default(), StackLevel::FullStack);
    assert_eq!(a, b);
    assert_ne!(a, store_key(&Bridge::default(), StackLevel::NfOnly));
    let mut cfg = bolt::nfs::bridge::BridgeConfig::default();
    cfg.rehash_threshold += 1;
    assert_ne!(a, store_key(&Bridge::with(cfg), StackLevel::FullStack));
    // Allocator choice is part of the NAT key.
    assert_ne!(
        store_key(
            &Nat::with(nat::NatConfig::default(), nat::AllocKind::A),
            StackLevel::FullStack
        ),
        store_key(
            &Nat::with(nat::NatConfig::default(), nat::AllocKind::B),
            StackLevel::FullStack
        )
    );
}

/// A corrupted record is rejected and transparently re-explored (and the
/// store heals itself by overwriting the bad record).
#[test]
fn corrupt_records_are_rejected_and_re_explored() {
    let store = temp_store("corrupt");
    let nf = Firewall::default();
    let level = StackLevel::NfOnly;
    let cold = store.get_or_explore(&nf, level);
    assert!(!cold.cached);

    // Flip a byte near the end of the record (payload territory).
    let key = store_key(&nf, level);
    let path = store.dir().join(format!("{key}.exp.bolt"));
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x5A;
    std::fs::write(&path, &bytes).unwrap();

    let healed = store.get_or_explore(&nf, level);
    assert!(!healed.cached, "corrupt record must force re-exploration");
    assert_result_identical("firewall-healed", &cold.result, &healed.result);
    // The rewrite healed the store: next read is warm again.
    assert!(store.get_or_explore(&nf, level).cached);
    let _ = std::fs::remove_dir_all(store.dir());
}

/// A record written by a different store-format version is rejected.
#[test]
fn version_mismatched_records_are_rejected() {
    let store = temp_store("version");
    let nf = StaticRouter::default();
    let level = StackLevel::FullStack;
    store.get_or_explore(&nf, level);

    let key = store_key(&nf, level);
    let path = store.dir().join(format!("{key}.exp.bolt"));
    let mut bytes = std::fs::read(&path).unwrap();
    // The version field sits right after the 4-byte magic.
    bytes[4] = bytes[4].wrapping_add(1);
    std::fs::write(&path, &bytes).unwrap();

    assert!(
        store.get(key, RecordKind::Exploration).is_none(),
        "version-skewed record must be a miss"
    );
    let e = store.get_or_explore(&nf, level);
    assert!(!e.cached, "version skew must force re-exploration");
    let _ = std::fs::remove_dir_all(store.dir());
}

/// `list` surfaces stored records with their metadata; `evict` removes
/// exactly the addressed record.
#[test]
fn list_and_evict_manage_records() {
    let store = temp_store("list");
    store.get_or_explore(&Bridge::default(), StackLevel::FullStack);
    store.get_or_explore(&Bridge::default(), StackLevel::NfOnly);
    store.get_or_explore(&LpmRouter::default(), StackLevel::FullStack);
    let entries = store.list().unwrap();
    assert_eq!(entries.len(), 3);
    assert_eq!(entries[0].nf_name, "bridge");
    assert_eq!(entries[0].level, level_tag(StackLevel::NfOnly));
    assert_eq!(entries[1].nf_name, "bridge");
    assert_eq!(entries[2].nf_name, "lpm_router");
    assert_eq!(entries[1].n_paths, 9, "bridge explores 9 paths");

    let key = store_key(&Bridge::default(), StackLevel::NfOnly);
    assert!(store.evict(key, RecordKind::Exploration).unwrap());
    assert_eq!(store.list().unwrap().len(), 2);
    assert!(
        !store
            .get_or_explore(&Bridge::default(), StackLevel::NfOnly)
            .cached
    );
    let _ = std::fs::remove_dir_all(store.dir());
}
