//! Determinism gate for parallel worklist exploration.
//!
//! The parallel explorer speculates worklist entries on worker threads
//! and commits them sequentially, absorbing each worker's private term
//! pool and replaying its solver schedule against the shared cache. The
//! contract is *bit-identity*: at any thread count the exploration
//! result — pool arena order, symbol registry, path order, constraints,
//! decisions, tags, verdicts, stateless event streams, solver counters,
//! truncation — matches the sequential run exactly. These tests pin
//! that via the store codec: `encode_result` serialises every one of
//! those fields, so byte-equal encodings mean bit-equal results.

use bolt::core::nf::NetworkFunction;
use bolt::nfs::{nat, Bridge, Firewall, LpmRouter, Nat, StaticRouter};
use bolt::see::codec::encode_result;
use bolt::see::{Explorer, NfCtx, NfVerdict, StackLevel};
use bolt::Bolt;

/// Encoded exploration of `nf` at `level` on `threads` workers.
fn encoded<N: NetworkFunction + Sync>(nf: &N, level: StackLevel, threads: usize) -> Vec<u8> {
    encode_result(&nf.explore_threads(level, threads).result)
}

/// Assert bit-identity of `nf`'s exploration at 1 vs 2 vs 8 threads,
/// at both stack levels.
fn assert_bit_identical<N: NetworkFunction + Sync>(name: &str, mk: impl Fn() -> N) {
    for level in [StackLevel::NfOnly, StackLevel::FullStack] {
        let seq = encoded(&mk(), level, 1);
        for threads in [2, 8] {
            assert_eq!(
                seq,
                encoded(&mk(), level, threads),
                "{name} {level:?}: {threads} threads diverged from sequential"
            );
        }
    }
}

#[test]
fn parallel_exploration_is_bit_identical_for_real_nfs() {
    assert_bit_identical("bridge", Bridge::default);
    assert_bit_identical("nat_a", || {
        Nat::with(nat::NatConfig::default(), nat::AllocKind::A)
    });
    assert_bit_identical("lpm_router", LpmRouter::default);
    assert_bit_identical("static_router", StaticRouter::default);
}

#[test]
fn parallel_solver_counters_match_sequential() {
    // The committer replays the sequential cache schedule, so the whole
    // counter block — requests, full solves, memo/witness hits,
    // evictions, terms, symbols, runs — is machine-independently equal.
    let seq = Firewall::default()
        .explore_threads(StackLevel::FullStack, 1)
        .result
        .stats;
    for threads in [2, 4, 8] {
        let par = Firewall::default()
            .explore_threads(StackLevel::FullStack, threads)
            .result
            .stats;
        assert_eq!(seq, par, "stats diverged at {threads} threads");
    }
}

#[test]
fn bolt_threads_knob_reaches_the_explorer() {
    // The fluent knob and the ambient default must both produce the
    // sequential result (everything does, but this pins the plumbing).
    let via_trait = encoded(&Bridge::default(), StackLevel::NfOnly, 1);
    let via_bolt = encode_result(
        &Bolt::nf(Bridge::default())
            .threads(8)
            .explore(StackLevel::NfOnly)
            .result,
    );
    assert_eq!(via_trait, via_bolt);
}

/// A wide symbolic fan-out (2^8 paths): every branch is feasible both
/// ways, so `max_paths` truncation engages mid-tree.
fn wide_nf(ctx: &mut bolt::see::SymbolicCtx<'_>) {
    let pkt = ctx.packet(64);
    for i in 0..8 {
        let b = ctx.load(pkt, i, 1);
        let z = ctx.lit(0, bolt::expr::Width::W8);
        let c = ctx.eq(b, z);
        ctx.branch(c);
    }
    ctx.verdict(NfVerdict::Drop);
}

#[test]
fn max_paths_truncation_is_deterministic_across_thread_counts() {
    let mut seq = Explorer::new();
    seq.max_paths = 7;
    let seq = seq.explore(wide_nf);
    assert!(seq.truncated, "truncation marker must be set");
    assert_eq!(seq.paths.len(), 7, "path count is exactly max_paths");
    let seq_bytes = encode_result(&seq);
    for threads in [2, 4, 8] {
        let mut ex = Explorer::new();
        ex.max_paths = 7;
        ex.threads = threads;
        let par = ex.explore_par(wide_nf);
        assert!(par.truncated, "{threads} threads: marker must survive");
        assert_eq!(par.paths.len(), 7, "{threads} threads: exact path count");
        assert_eq!(
            encode_result(&par),
            seq_bytes,
            "{threads} threads: truncated result diverged"
        );
    }
    // Untruncated, the same NF is complete at any thread count.
    let full_seq = Explorer::new().explore(wide_nf);
    assert!(!full_seq.truncated);
    assert_eq!(full_seq.paths.len(), 256);
    let mut ex = Explorer::new();
    ex.threads = 4;
    let full_par = ex.explore_par(wide_nf);
    assert_eq!(encode_result(&full_par), encode_result(&full_seq));
}
