//! The paper's central soundness property (§2.2): "for any real execution
//! that satisfies the contract's assumptions, the measured performance is
//! guaranteed to be no more than the metric value predicted by the
//! contract" — checked end-to-end for every NF, on randomized workloads,
//! for all three metrics, with the §5.1 gap bound on IC/MA. Everything
//! runs through the fluent `Bolt` pipeline and the `NetworkFunction`
//! trait.

use bolt::core::nf::Contract;
use bolt::core::{ClassSpec, InputClass};
use bolt::distiller::NfRunner;
use bolt::expr::PcvAssignment;
use bolt::lib::clock::Granularity;
use bolt::nfs::bridge::{Bridge, BridgeConfig};
use bolt::nfs::lb::{LbConfig, LoadBalancer};
use bolt::nfs::lpm_router::LpmRouter;
use bolt::nfs::nat::{AllocKind, Nat, NatConfig};
use bolt::see::StackLevel;
use bolt::trace::{AddressSpace, Metric};
use bolt::workloads::generators::*;
use bolt::workloads::TimedPacket;
use bolt::{Bolt, NetworkFunction};

/// For each packet: measured ≤ the worst contract path evaluated at the
/// distilled worst PCV binding. Returns (max measured, predicted bound,
/// gap fraction). `class` restricts the query the way §5.1's per-class
/// methodology does (e.g. the measured workload never rehashes, so its
/// class excludes the rehash cliff).
fn check_bound_class<I>(
    contract: &mut Contract<I>,
    runner: &NfRunner,
    metric: Metric,
    class: &InputClass,
) -> (u64, u64, f64) {
    let env: PcvAssignment = runner.distiller.worst_assignment();
    let bound = contract.query(class, metric, &env).unwrap().value;
    let measured = runner
        .samples
        .iter()
        .map(|s| match metric {
            Metric::Instructions => s.ic,
            Metric::MemAccesses => s.ma,
            Metric::Cycles => s.cycles as u64,
        })
        .max()
        .unwrap();
    assert!(
        bound >= measured,
        "{metric} bound violated: predicted {bound} < measured {measured}"
    );
    let gap = (bound - measured) as f64 / bound as f64;
    (measured, bound, gap)
}

/// Unconstrained-class bound check.
fn check_bound<I>(
    contract: &mut Contract<I>,
    runner: &NfRunner,
    metric: Metric,
) -> (u64, u64, f64) {
    check_bound_class(contract, runner, metric, &InputClass::unconstrained())
}

#[test]
fn bridge_contract_is_conservative_with_small_gap() {
    // The §5.1 gap methodology measures clean per-class traffic: "a few
    // representative classes of input packets that do not encounter hash
    // collisions or entry expirations" (Br2/Br3). Long TTL ⇒ no expiry;
    // small MAC space in a large table ⇒ negligible collisions.
    let nf = Bridge::with(BridgeConfig {
        capacity: 1024,
        ttl_ns: u64::MAX / 2,
        rehash_threshold: 64,
    });
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();

    let mut aspace = AddressSpace::new();
    let mut b = nf.state(contract.ids, &mut aspace);
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
    let pkts = bridge_traffic(11, 3000, 128, false, 10_000);
    runner.play_nf(&nf, &mut b, &pkts);

    let class = InputClass::new("no rehash", ClassSpec::NotTag("src:rehash"));
    let (_, _, _) = check_bound_class(&mut contract, &runner, Metric::MemAccesses, &class);
    let (_, _, _) = check_bound_class(&mut contract, &runner, Metric::Cycles, &class);
    let (measured, bound, gap) =
        check_bound_class(&mut contract, &runner, Metric::Instructions, &class);
    // §5.1: the prediction over-estimates the worst measured packet only
    // through path coalescing; on clean traffic the gap stays small.
    assert!(
        gap <= 0.15,
        "bridge IC gap too large: measured {measured}, bound {bound} ({:.1}%)",
        gap * 100.0
    );
}

#[test]
fn bridge_bound_holds_under_expiry_churn() {
    // Bound-only check on dirty traffic (expiry bursts + collisions):
    // conservatism must hold even when the worst PCVs of different
    // packets combine.
    let nf = Bridge::with(BridgeConfig {
        capacity: 1024,
        ttl_ns: 1_000_000,
        rehash_threshold: 64,
    });
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    let mut aspace = AddressSpace::new();
    let mut b = nf.state(contract.ids, &mut aspace);
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
    let pkts = bridge_traffic(11, 3000, 256, false, 10_000);
    runner.play_nf(&nf, &mut b, &pkts);
    let class = InputClass::new("no rehash", ClassSpec::NotTag("src:rehash"));
    check_bound_class(&mut contract, &runner, Metric::Instructions, &class);
    check_bound_class(&mut contract, &runner, Metric::MemAccesses, &class);
    check_bound_class(&mut contract, &runner, Metric::Cycles, &class);
}

#[test]
fn nat_contract_is_conservative_on_churny_traffic() {
    let nf = Nat::with(
        NatConfig {
            capacity: 1024,
            ttl_ns: 500_000,
            n_ports: 1024,
            ..Default::default()
        },
        AllocKind::A,
    );
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();

    let mut aspace = AddressSpace::new();
    let mut state = nf.state(contract.ids, &mut aspace);
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
    let pkts = churn_flows(13, 4000, 64, 4, 20_000, 0);
    runner.play_nf(&nf, &mut state, &pkts);
    assert!(
        runner.samples.iter().filter(|s| s.ic > 0).count() == 4000,
        "all packets processed"
    );
    check_bound(&mut contract, &runner, Metric::Instructions);
    check_bound(&mut contract, &runner, Metric::MemAccesses);
    check_bound(&mut contract, &runner, Metric::Cycles);
}

#[test]
fn lb_contract_is_conservative_with_failures() {
    let nf = LoadBalancer::with(LbConfig {
        capacity: 512,
        ttl_ns: 1_000_000,
        hb_ttl_ns: 300_000,
        ..Default::default()
    });
    let cfg = nf.cfg;
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();

    let mut aspace = AddressSpace::new();
    let mut l = nf.state(contract.ids, &mut aspace);
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
    // Heartbeats for only half the backends → alive and dead paths both
    // exercised; clients churn.
    let hb = heartbeats(
        cfg.n_backends / 2,
        40,
        100_000,
        cfg.backend_port,
        cfg.hb_udp_port,
    );
    let clients = churn_flows(17, 3000, 48, 8, 15_000, 0);
    let pkts = merge(vec![hb, clients]);
    runner.play_nf(&nf, &mut l, &pkts);
    check_bound(&mut contract, &runner, Metric::Instructions);
    check_bound(&mut contract, &runner, Metric::MemAccesses);
    check_bound(&mut contract, &runner, Metric::Cycles);
}

#[test]
fn lpm_router_contract_is_conservative_and_tight() {
    let nf = LpmRouter::default();
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();

    let mut aspace = AddressSpace::new();
    let mut r = nf.state(contract.ids, &mut aspace);
    r.lpm.insert(0x0A000000, 8, 1);
    r.lpm.insert(0x0B0C0000, 24, 2); // long path on the 16-bit test geometry
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Nanoseconds);
    let pkts = lpm_traffic(19, 2000, 0x0A000100, 0x0B0C0001, 0.3, 1000);
    runner.play_nf(&nf, &mut r, &pkts);
    let (measured, bound, gap) = check_bound(&mut contract, &runner, Metric::Instructions);
    // The LPM router is stateless apart from the constant-cost table: the
    // prediction should be nearly exact (paper: ≤7% for IC).
    assert!(
        gap <= 0.07,
        "LPM IC gap exceeds the paper's bound: measured {measured}, bound {bound} ({:.1}%)",
        gap * 100.0
    );
    check_bound(&mut contract, &runner, Metric::MemAccesses);
    check_bound(&mut contract, &runner, Metric::Cycles);
}

#[test]
fn per_packet_predictions_bound_every_packet() {
    // Stronger than the worst-case check: every individual packet's
    // measured IC is bounded by the contract evaluated at that packet's
    // own distilled PCVs (the per-packet methodology of §4).
    let nf = Bridge::with(BridgeConfig {
        capacity: 512,
        ttl_ns: 400_000,
        rehash_threshold: 64,
    });
    let contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    let mut aspace = AddressSpace::new();
    let mut b = nf.state(contract.ids, &mut aspace);
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
    let pkts: Vec<TimedPacket> = bridge_traffic(23, 1500, 128, false, 30_000);
    runner.play_nf(&nf, &mut b, &pkts);
    for (sample, obs) in runner.samples.iter().zip(runner.distiller.packets()) {
        let pred = contract
            .worst(Metric::Instructions, &obs.max)
            .unwrap()
            .expr(Metric::Instructions)
            .eval(&obs.max);
        assert!(
            pred >= sample.ic,
            "packet {}: predicted {pred} < measured {}",
            sample.seq,
            sample.ic
        );
    }
}
