//! Contract-proven chain parallelization, end to end: the planner must
//! group a chain's provably-commuting stages (two identical firewalls),
//! keep provably order-dependent pairs sequential (NAT vs. firewall,
//! firewall vs. router), predict a cycle contract strictly below the
//! sequential sum, stay byte-identical at any worker-thread count, and
//! cache its plan as a store record that any stage-config change
//! invalidates.

use bolt::core::{encode_contract, encode_plan, stages_commute, Composer, ContractStore, Pipeline};
use bolt::expr::PcvAssignment;
use bolt::nfs::firewall::FirewallConfig;
use bolt::nfs::{Firewall, Nat, StaticRouter};
use bolt::see::StackLevel;
use bolt::solver::{Solver, SolverCache};
use bolt::NetworkFunction;

fn temp_store(tag: &str) -> ContractStore {
    let dir = std::env::temp_dir().join(format!("bolt-chain-plan-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ContractStore::open(dir).unwrap()
}

/// The acceptance chain: two interchangeable firewalls, then a router.
fn fw_fw_rt() -> Pipeline<'static> {
    Pipeline::new()
        .push(Firewall::default())
        .push(Firewall::default())
        .push(StaticRouter::default())
}

#[test]
fn parallelize_groups_commuting_stages_and_beats_the_sum() {
    let level = StackLevel::NfOnly;
    let rep = fw_fw_rt().parallelize(level).unwrap();
    let plan = rep.plan.as_ref().expect("parallelize attaches a plan");
    assert_eq!(
        plan.groups,
        vec![vec![0, 1], vec![2]],
        "the identical firewalls group; the router stays sequential"
    );
    assert!(plan.is_parallel());
    assert_eq!(plan.widest_group(), 2);
    // The identical pair commutes trivially (same store key), witnessed.
    assert!(plan
        .witnesses
        .iter()
        .any(|w| w.left == 0 && w.right == 1 && w.commutes && w.identical));
    // The firewall/router pair was probed and provably kept sequential.
    assert!(plan
        .witnesses
        .iter()
        .any(|w| w.right == 2 && !w.commutes && !w.identical));
    // The parallelized cycle contract is max + merge, strictly below
    // the sequential sum.
    let env = PcvAssignment::new();
    assert!(
        plan.parallel_cycles(&env) < plan.sequential_cycles(&env),
        "max+merge ({}cy) must beat the sum ({}cy)",
        plan.parallel_cycles(&env),
        plan.sequential_cycles(&env)
    );
    assert!(plan.predicted_speedup() > 1.0);
    // The semantic contract is untouched: same composed contract as the
    // plain sequential report.
    let plain = fw_fw_rt().report(level).unwrap();
    assert_eq!(
        encode_contract(&rep.contract),
        encode_contract(&plain.contract),
        "planning must not change the composed contract"
    );
    // The report renders the plan.
    let shown = rep.to_string();
    assert!(shown.contains("[firewall | firewall] -> [static_router]"));
    let json = rep.to_json();
    assert!(json.contains("\"groups\": [[0, 1], [2]]"));
}

#[test]
fn plans_are_byte_identical_at_any_thread_count() {
    let level = StackLevel::NfOnly;
    let base = fw_fw_rt().threads(1).parallelize(level).unwrap();
    let plan_bytes = encode_plan(base.plan.as_ref().unwrap());
    let contract_bytes = encode_contract(&base.contract);
    for threads in [2, 8] {
        let rep = fw_fw_rt().threads(threads).parallelize(level).unwrap();
        assert_eq!(
            encode_plan(rep.plan.as_ref().unwrap()),
            plan_bytes,
            "plan at {threads} threads diverged from sequential"
        );
        assert_eq!(
            encode_contract(&rep.contract),
            contract_bytes,
            "contract at {threads} threads diverged from sequential"
        );
    }
}

#[test]
fn nat_and_firewall_are_provably_order_dependent() {
    let level = StackLevel::NfOnly;
    let nat = Nat::default().explore(level).contract().into_inner();
    let fw = Firewall::default().explore(level).contract().into_inner();
    let solver = Solver::default();
    let mut cache = SolverCache::new();
    assert!(
        !stages_commute(&nat, &fw, "nat", "firewall", &solver, &mut cache, 1),
        "NAT before vs. after the firewall must not commute"
    );
    // And the planner keeps them sequential inside a chain.
    let rep = Pipeline::new()
        .push(Nat::default())
        .push(Firewall::default())
        .parallelize(level)
        .unwrap();
    let plan = rep.plan.as_ref().unwrap();
    assert_eq!(plan.groups, vec![vec![0], vec![1]]);
    assert!(!plan.is_parallel());
    assert_eq!(
        plan.parallel_cycles(&PcvAssignment::new()),
        plan.sequential_cycles(&PcvAssignment::new()),
        "an all-sequential plan predicts exactly the sum (merge is free)"
    );
}

#[test]
fn plan_records_cache_and_invalidate_on_stage_config_change() {
    let store = temp_store("invalidate");
    let level = StackLevel::NfOnly;
    let cold = fw_fw_rt().with_store(&store).parallelize(level).unwrap();
    assert!(!cold.plan_cached, "first run computes the plan");
    let warm = fw_fw_rt().with_store(&store).parallelize(level).unwrap();
    assert!(warm.plan_cached, "second run decodes the plan record");
    assert!(
        warm.fully_cached(),
        "a fully warm parallelized run is still solver-free"
    );
    assert_eq!(warm.plan, cold.plan, "cached plan is the computed plan");
    // Reconfigure the second firewall: its stage key moves, so the plan
    // key misses and the pair is no longer trivially interchangeable.
    let mut cfg = FirewallConfig::default();
    cfg.rules.insert(0, (0xC0A80100, 24, 8080));
    let changed = || {
        Pipeline::new()
            .push(Firewall::default())
            .push(Firewall::with(cfg.clone()))
            .push(StaticRouter::default())
    };
    let rep = changed().with_store(&store).parallelize(level).unwrap();
    assert!(
        !rep.plan_cached,
        "a changed stage config must invalidate the stored plan"
    );
    let plan = rep.plan.as_ref().unwrap();
    assert!(
        plan.witnesses
            .iter()
            .all(|w| !(w.left == 0 && w.right == 1 && w.identical)),
        "differently-configured firewalls are not identical stages"
    );
    // And the recomputed plan is itself memoized.
    let rewarm = changed().with_store(&store).parallelize(level).unwrap();
    assert!(rewarm.plan_cached);
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn composer_front_door_matches_pipeline_parallelize() {
    let level = StackLevel::NfOnly;
    let via_pipeline = fw_fw_rt().parallelize(level).unwrap();
    let solver = Solver::default();
    let pipeline = fw_fw_rt();
    let via_composer = Composer::new(&solver)
        .parallelize(true)
        .chain(&pipeline, level)
        .unwrap();
    assert_eq!(
        encode_plan(via_composer.plan.as_ref().unwrap()),
        encode_plan(via_pipeline.plan.as_ref().unwrap())
    );
    assert_eq!(
        encode_contract(&via_composer.contract),
        encode_contract(&via_pipeline.contract)
    );
}
