//! Solver-query regression guard for the incremental exploration engine.
//!
//! The pre-incremental explorer issued one full solver query per
//! feasibility request, so `checks_requested` is the pre-PR query count.
//! These tests assert — machine-independently, via the `SolverStats`
//! counters — that the incremental engine answers at least 5× fewer
//! requests with full decision-procedure runs, and that exploration
//! output (path counts per NF) is unchanged.

use bolt::core::nf::NetworkFunction;
use bolt::nfs::{nat, Bridge, ExampleRouter, Firewall, LoadBalancer, LpmRouter, Nat, StaticRouter};
use bolt::see::{ExploreStats, Explorer, NfCtx, NfVerdict, StackLevel};
use bolt::solver::SolverStats;

fn assert_reduction(name: &str, s: SolverStats, factor: u64) {
    assert!(
        s.checks_requested >= factor * s.solver_queries.max(1),
        "{name}: solver queries not reduced ≥{factor}x: {} requests \
         (pre-incremental query count) vs {} full solves",
        s.checks_requested,
        s.solver_queries,
    );
    // Every request is answered by a shortcut or a full solve (solves can
    // exceed the residual: per-atom sub-solves have no top-level request).
    assert!(
        s.solver_queries + s.shortcuts() >= s.checks_requested,
        "{name}: unaccounted requests: {s:?}"
    );
}

fn explore_stats<N: NetworkFunction + Sync>(nf: N, level: StackLevel) -> ExploreStats {
    nf.explore(level).result.stats
}

#[test]
fn bridge_exploration_reduces_solver_queries_5x() {
    for level in [StackLevel::NfOnly, StackLevel::FullStack] {
        let stats = explore_stats(Bridge::default(), level);
        assert_reduction("bridge", stats.solver, 5);
    }
}

#[test]
fn nat_exploration_reduces_solver_queries_5x() {
    for kind in [nat::AllocKind::A, nat::AllocKind::B] {
        let stats = explore_stats(
            Nat::with(nat::NatConfig::default(), kind),
            StackLevel::FullStack,
        );
        assert_reduction("nat", stats.solver, 5);
    }
}

#[test]
fn lpm_router_exploration_reduces_solver_queries_5x() {
    let stats = explore_stats(LpmRouter::default(), StackLevel::FullStack);
    assert_reduction("lpm_router", stats.solver, 5);
}

/// Exact path counts for every NF at both stack levels, pinned to the
/// values the pre-incremental explorer produced (the full per-path
/// fingerprint — decisions, tags, verdicts, metrics — can be diffed with
/// `cargo run --release --example fingerprint`; expression-level parity
/// is pinned by `tests/nf_api.rs` and the conservatism suite).
#[test]
fn exploration_output_is_unchanged() {
    type PathCounter = Box<dyn Fn(StackLevel) -> usize>;
    fn paths<N: NetworkFunction + Sync>(nf: N, level: StackLevel) -> usize {
        nf.explore(level).result.paths.len()
    }
    let cases: Vec<(&str, usize, PathCounter)> = vec![
        ("bridge", 9, Box::new(|l| paths(Bridge::default(), l))),
        (
            "example_router",
            2,
            Box::new(|l| paths(ExampleRouter::default(), l)),
        ),
        ("firewall", 3, Box::new(|l| paths(Firewall::default(), l))),
        ("lb", 8, Box::new(|l| paths(LoadBalancer::default(), l))),
        (
            "lpm_router",
            4,
            Box::new(|l| paths(LpmRouter::default(), l)),
        ),
        (
            "nat_a",
            8,
            Box::new(|l| paths(Nat::with(nat::NatConfig::default(), nat::AllocKind::A), l)),
        ),
        (
            "nat_b",
            8,
            Box::new(|l| paths(Nat::with(nat::NatConfig::default(), nat::AllocKind::B), l)),
        ),
        (
            "static_router",
            13,
            Box::new(|l| paths(StaticRouter::default(), l)),
        ),
    ];
    for (name, expected, count) in &cases {
        for level in [StackLevel::NfOnly, StackLevel::FullStack] {
            assert_eq!(
                count(level),
                *expected,
                "{name} {level:?}: feasible-path count changed"
            );
        }
    }
}

/// Library callers see truncation as data, not a panic (the old explorer
/// `assert!`ed on `max_paths`).
#[test]
fn path_explosion_is_reported_not_panicked() {
    fn wide_nf(ctx: &mut bolt::see::SymbolicCtx<'_>) {
        let pkt = ctx.packet(64);
        for i in 0..8 {
            let b = ctx.load(pkt, i, 1);
            let z = ctx.lit(0, bolt::expr::Width::W8);
            let c = ctx.eq(b, z);
            ctx.branch(c);
        }
        ctx.verdict(NfVerdict::Drop);
    }
    let mut ex = Explorer::new();
    ex.max_paths = 4;
    let result = ex.explore(wide_nf);
    assert!(result.truncated, "explosion must set the truncation marker");
    assert!(result.paths.len() <= 4);
    // Untruncated exploration of the same NF: 2^8 paths, marker clear.
    let full = Explorer::new().explore(wide_nf);
    assert!(!full.truncated);
    assert_eq!(full.paths.len(), 256);
}
