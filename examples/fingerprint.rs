//! Dump a deterministic fingerprint of every NF's exploration output:
//! path count, per-path decisions, tags, verdicts, and (IC, MA) metrics.
//! Used to verify that explorer/solver changes keep output bit-identical.

use bolt::core::nf::NetworkFunction;
use bolt::expr::PcvAssignment;
use bolt::nfs::{nat, Bridge, ExampleRouter, Firewall, LoadBalancer, LpmRouter, Nat, StaticRouter};
use bolt::see::StackLevel;
use bolt::trace::Metric;

fn dump<N: NetworkFunction + Sync>(name: &str, nf: N) {
    for level in [StackLevel::NfOnly, StackLevel::FullStack] {
        let contract = nf.explore(level).contract();
        println!("== {name} {level:?}: {} paths", contract.paths().len());
        let env = PcvAssignment::new();
        for p in contract.paths() {
            let ic = p.expr(Metric::Instructions).eval(&env);
            let ma = p.expr(Metric::MemAccesses).eval(&env);
            let cy = p.expr(Metric::Cycles).eval(&env);
            println!(
                "  {} tags={:?} verdict={:?} ic={ic} ma={ma} cy={cy}",
                p.index, p.tags, p.verdict
            );
        }
    }
}

fn main() {
    dump("bridge", Bridge::default());
    dump("example_router", ExampleRouter::default());
    dump("firewall", Firewall::default());
    dump("lb", LoadBalancer::default());
    dump("lpm_router", LpmRouter::default());
    dump(
        "nat_a",
        Nat::with(nat::NatConfig::default(), nat::AllocKind::A),
    );
    dump(
        "nat_b",
        Nat::with(nat::NatConfig::default(), nat::AllocKind::B),
    );
    dump("static_router", StaticRouter::default());
}
