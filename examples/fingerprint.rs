//! Dump a deterministic fingerprint of every NF's exploration output:
//! path count, per-path decisions, tags, verdicts, and (IC, MA) metrics.
//! Used to verify that explorer/solver changes keep output bit-identical.
//!
//! With `chain` as the first argument, it instead fingerprints composed
//! chain contracts (paths, tags, verdicts, metrics, and the compose-side
//! solver counters) at both stack levels — the CI `chain-determinism`
//! job diffs this output at `BOLT_THREADS=1/2/8`, so any scheduling or
//! merge-order leak in the parallel composer fails the gate.

use bolt::core::nf::NetworkFunction;
use bolt::core::Pipeline;
use bolt::expr::PcvAssignment;
use bolt::nfs::{nat, Bridge, ExampleRouter, Firewall, LoadBalancer, LpmRouter, Nat, StaticRouter};
use bolt::see::StackLevel;
use bolt::trace::Metric;

fn dump<N: NetworkFunction + Sync>(name: &str, nf: N) {
    for level in [StackLevel::NfOnly, StackLevel::FullStack] {
        let contract = nf.explore(level).contract();
        println!("== {name} {level:?}: {} paths", contract.paths().len());
        let env = PcvAssignment::new();
        for p in contract.paths() {
            let ic = p.expr(Metric::Instructions).eval(&env);
            let ma = p.expr(Metric::MemAccesses).eval(&env);
            let cy = p.expr(Metric::Cycles).eval(&env);
            println!(
                "  {} tags={:?} verdict={:?} ic={ic} ma={ma} cy={cy}",
                p.index, p.tags, p.verdict
            );
        }
    }
}

fn dump_chain(label: &str, chain: &Pipeline<'_>) {
    for level in [StackLevel::NfOnly, StackLevel::FullStack] {
        // Parallelize so the plan — groups, witnesses, predicted cycle
        // contract — is part of the fingerprint; it must be just as
        // thread-count-independent as the composed contract itself.
        let rep = chain.parallelize(level).expect("non-empty chain");
        let key = chain.chain_key(level).expect("non-empty chain");
        println!(
            "== chain {label} {level:?}: {} paths  key {key}",
            rep.contract.paths.len()
        );
        let env = PcvAssignment::new();
        for p in &rep.contract.paths {
            let ic = p.expr(Metric::Instructions).eval(&env);
            let ma = p.expr(Metric::MemAccesses).eval(&env);
            let cy = p.expr(Metric::Cycles).eval(&env);
            println!(
                "  {} tags={:?} verdict={:?} ic={ic} ma={ma} cy={cy}",
                p.index, p.tags, p.verdict
            );
        }
        // Compose-side solver counters are part of the fingerprint: the
        // parallel committer replays the sequential schedule, so these
        // must be byte-identical at any thread count too.
        let s = rep.solver;
        println!(
            "  compose: steps={}+{} requests={} queries={} witness={} memo={} unsat-prop={}",
            rep.steps_composed,
            rep.steps_cached,
            s.checks_requested,
            s.solver_queries,
            s.witness_reuse_hits,
            s.memo_hits,
            s.unsat_by_propagation
        );
        let plan = rep.plan.as_ref().expect("parallelize attaches a plan");
        println!(
            "  plan: {}  seq={}cy par={}cy",
            plan.groups_display(),
            plan.sequential_cycles(&env),
            plan.parallel_cycles(&env)
        );
        for w in &plan.witnesses {
            println!("  witness: {}", plan.describe_witness(w));
        }
    }
}

fn dump_chains() {
    // The determinism oracle must be environment-insensitive: an
    // ambient store would flip the second run from "composed" to
    // "decoded" (different counters, and no parallel composer exercised
    // at all), failing — or worse, hollowing out — the CI gate.
    std::env::remove_var("BOLT_STORE_DIR");
    let fw_rt = Pipeline::new()
        .push(Firewall::default())
        .push(StaticRouter::default());
    dump_chain("firewall->static_router", &fw_rt);
    let rt_fw = Pipeline::new()
        .push(StaticRouter::default())
        .push(Firewall::default());
    dump_chain("static_router->firewall", &rt_fw);
    let triple = Pipeline::new()
        .push(Firewall::default())
        .push(Firewall::default())
        .push(StaticRouter::default());
    dump_chain("firewall->firewall->static_router", &triple);
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("chain") {
        dump_chains();
        return;
    }
    dump("bridge", Bridge::default());
    dump("example_router", ExampleRouter::default());
    dump("firewall", Firewall::default());
    dump("lb", LoadBalancer::default());
    dump("lpm_router", LpmRouter::default());
    dump(
        "nat_a",
        Nat::with(nat::NatConfig::default(), nat::AllocKind::A),
    );
    dump(
        "nat_b",
        Nat::with(nat::NatConfig::default(), nat::AllocKind::B),
    );
    dump("static_router", StaticRouter::default());
}
