//! `bolt` — the contract store as a command-line artifact pipeline.
//!
//! Contracts are compile-once/query-forever artifacts: `explore` derives
//! and persists them, `list` inspects the store, `query` answers
//! performance questions from stored records (warm runs never touch the
//! solver), and `diff` compares two stored contracts.
//!
//! ```text
//! cargo run --release --example bolt_cli -- explore --all
//! cargo run --release --example bolt_cli -- list
//! cargo run --release --example bolt_cli -- query --nf bridge --pcv e=16 --pcv t=4
//! cargo run --release --example bolt_cli -- chain --nfs firewall,static_router --tag no-options
//! cargo run --release --example bolt_cli -- diff --a firewall --b static_router
//! cargo run --release --example bolt_cli -- evict --nf bridge --level nf-only
//! ```
//!
//! The store directory comes from `--store DIR`, else `BOLT_STORE_DIR`,
//! else `.bolt-store`.
//!
//! Long-lived serving: `serve` keeps the store open and contracts hot in
//! memory behind a framed socket protocol; `--remote ENDPOINT` routes
//! `query`/`diff`/`list`/`provenance`/`stats`/`shutdown` to such a
//! server instead of opening the store in-process — with byte-identical
//! output, since both paths render through `bolt_serve::ServeCore`:
//!
//! ```text
//! cargo run --release --example bolt_cli -- serve --socket /tmp/bolt.sock &
//! cargo run --release --example bolt_cli -- query --nf bridge --remote /tmp/bolt.sock
//! cargo run --release --example bolt_cli -- shutdown --remote /tmp/bolt.sock
//! ```

use std::collections::BTreeSet;
use std::process::exit;

use bolt::core::store::{level_tag, store_key, RecordKind, StoreExt};
use bolt::core::{ClassSpec, InputClass, NfContract, Pipeline};
use bolt::expr::PcvAssignment;
use bolt::nfs::nat::{AllocKind, NatConfig};
use bolt::nfs::{Bridge, ExampleRouter, Firewall, LoadBalancer, LpmRouter, Nat, StaticRouter};
use bolt::see::StackLevel;
use bolt::serve::{
    CacheConfig, Client, DiffRequest, Endpoint, MetricsReply, QueryRequest, Request, Response,
    ServeCore, Server,
};
use bolt::trace::Metric;
use bolt::{ContractStore, NetworkFunction};

const NF_NAMES: [&str; 8] = [
    "bridge",
    "example_router",
    "firewall",
    "lb",
    "lpm_router",
    "nat-a",
    "nat-b",
    "static_router",
];

/// Dispatch a generic body over the NF named on the command line.
macro_rules! with_nf {
    ($name:expr, $nf:ident => $body:block) => {
        match $name {
            "bridge" => {
                let $nf = Bridge::default();
                $body
            }
            "example_router" => {
                let $nf = ExampleRouter::default();
                $body
            }
            "firewall" => {
                let $nf = Firewall::default();
                $body
            }
            "lb" => {
                let $nf = LoadBalancer::default();
                $body
            }
            "lpm_router" => {
                let $nf = LpmRouter::default();
                $body
            }
            "nat" | "nat-a" => {
                let $nf = Nat::with(NatConfig::default(), AllocKind::A);
                $body
            }
            "nat-b" => {
                let $nf = Nat::with(NatConfig::default(), AllocKind::B);
                $body
            }
            "static_router" => {
                let $nf = StaticRouter::default();
                $body
            }
            other => die(&format!(
                "unknown NF {other:?}; known: {}",
                NF_NAMES.join(", ")
            )),
        }
    };
}

fn die(msg: &str) -> ! {
    eprintln!("bolt: {msg}");
    exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage: bolt_cli <command> [options]\n\
         \n\
         commands:\n\
         \x20 explore  --nf NAME | --all   [--level nf-only|full-stack|both] [--store DIR]\n\
         \x20 list     [--store DIR | --remote EP]\n\
         \x20 query    --nf NAME [--level L] [--metric M] [--pcv name=val]... [--tag TAG] [--store DIR | --remote EP]\n\
         \x20          [--depth N] [--repeat N]   (remote only: pipeline depth, repeated pipelined queries)\n\
         \x20 chain    --nfs A,B[,C...] [--level L] [--metric M] [--tag TAG] [--threads N]\n\
         \x20          [--parallelize] [--plan] [--json] [--store DIR]\n\
         \x20 diff     --a NF[:LEVEL] --b NF[:LEVEL] [--metric M] [--store DIR | --remote EP]\n\
         \x20 evict    --nf NAME [--level L|both] | --budget BYTES   [--store DIR]\n\
         \x20 serve    [--socket PATH] [--tcp ADDR] [--cache-budget BYTES] [--max-conns N]\n\
         \x20          [--idle-timeout SECS] [--deadline SECS] [--metrics-text PATH] [--store DIR]\n\
         \x20 provenance --nf NAME [--level L] [--store DIR | --remote EP]\n\
         \x20 ping     --remote EP [--timeout SECS]   (exit 0 = alive, 1 = not)\n\
         \x20 stats    --remote EP [--histograms | --json]\n\
         \x20 shutdown --remote EP\n\
         \n\
         NAME   ∈ {{{}}}\n\
         LEVEL  ∈ {{nf-only, full-stack}} (default: full-stack)\n\
         M      ∈ {{instructions, mem-accesses, cycles}} (default: instructions)\n\
         EP     a unix socket path, or tcp:HOST:PORT\n\
         store  --store DIR, else $BOLT_STORE_DIR, else .bolt-store\n\
         remote calls honour --timeout SECS as the per-call reply deadline",
        NF_NAMES.join(", ")
    );
    exit(2);
}

fn parse_level(s: &str) -> StackLevel {
    match s {
        "nf-only" => StackLevel::NfOnly,
        "full-stack" => StackLevel::FullStack,
        _ => die(&format!("bad level {s:?} (nf-only | full-stack)")),
    }
}

fn parse_metric(s: &str) -> Metric {
    match s {
        "instructions" | "ic" => Metric::Instructions,
        "mem-accesses" | "ma" => Metric::MemAccesses,
        "cycles" => Metric::Cycles,
        _ => die(&format!(
            "bad metric {s:?} (instructions | mem-accesses | cycles)"
        )),
    }
}

fn level_name(tag: u8) -> &'static str {
    match tag {
        0 => "nf-only",
        1 => "full-stack",
        _ => "?",
    }
}

/// Parsed command-line options (a flat bag; each command picks what it
/// needs).
#[derive(Default)]
struct Opts {
    nf: Option<String>,
    nfs: Option<String>,
    all: bool,
    level: Option<String>,
    metric: Option<String>,
    store: Option<String>,
    pcvs: Vec<(String, u64)>,
    tag: Option<String>,
    a: Option<String>,
    b: Option<String>,
    budget: Option<u64>,
    threads: Option<usize>,
    remote: Option<String>,
    socket: Option<String>,
    tcp: Option<String>,
    cache_budget: Option<u64>,
    timeout: Option<u64>,
    depth: Option<u32>,
    repeat: Option<usize>,
    max_conns: Option<usize>,
    idle_timeout: Option<u64>,
    deadline: Option<u64>,
    histograms: bool,
    json: bool,
    metrics_text: Option<String>,
    parallelize: bool,
    plan: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--nf" => o.nf = Some(val("--nf")),
            "--nfs" => o.nfs = Some(val("--nfs")),
            "--all" => o.all = true,
            "--threads" => {
                let v = val("--threads");
                o.threads = Some(
                    v.parse::<usize>()
                        .unwrap_or_else(|_| die(&format!("bad --threads {v:?} (want a count)"))),
                );
            }
            "--level" => o.level = Some(val("--level")),
            "--metric" => o.metric = Some(val("--metric")),
            "--store" => o.store = Some(val("--store")),
            "--tag" => o.tag = Some(val("--tag")),
            "--a" => o.a = Some(val("--a")),
            "--b" => o.b = Some(val("--b")),
            "--budget" => {
                let v = val("--budget");
                o.budget = Some(
                    v.parse::<u64>()
                        .unwrap_or_else(|_| die(&format!("bad --budget {v:?} (want bytes)"))),
                );
            }
            "--remote" => o.remote = Some(val("--remote")),
            "--histograms" => o.histograms = true,
            "--json" => o.json = true,
            "--parallelize" => o.parallelize = true,
            "--plan" => o.plan = true,
            "--metrics-text" => o.metrics_text = Some(val("--metrics-text")),
            "--socket" => o.socket = Some(val("--socket")),
            "--tcp" => o.tcp = Some(val("--tcp")),
            "--cache-budget" => {
                let v = val("--cache-budget");
                o.cache_budget =
                    Some(v.parse::<u64>().unwrap_or_else(|_| {
                        die(&format!("bad --cache-budget {v:?} (want bytes)"))
                    }));
            }
            "--timeout" => {
                let v = val("--timeout");
                o.timeout = Some(
                    v.parse::<u64>()
                        .unwrap_or_else(|_| die(&format!("bad --timeout {v:?} (want seconds)"))),
                );
            }
            "--depth" => {
                let v = val("--depth");
                o.depth = Some(v.parse::<u32>().unwrap_or_else(|_| {
                    die(&format!("bad --depth {v:?} (want a pipeline depth ≥ 1)"))
                }));
            }
            "--repeat" => {
                let v = val("--repeat");
                o.repeat = Some(
                    v.parse::<usize>()
                        .unwrap_or_else(|_| die(&format!("bad --repeat {v:?} (want a count)"))),
                );
            }
            "--max-conns" => {
                let v = val("--max-conns");
                o.max_conns = Some(v.parse::<usize>().unwrap_or_else(|_| {
                    die(&format!(
                        "bad --max-conns {v:?} (want a count; 0 = unlimited)"
                    ))
                }));
            }
            "--idle-timeout" => {
                let v = val("--idle-timeout");
                o.idle_timeout =
                    Some(v.parse::<u64>().unwrap_or_else(|_| {
                        die(&format!("bad --idle-timeout {v:?} (want seconds)"))
                    }));
            }
            "--deadline" => {
                let v = val("--deadline");
                o.deadline = Some(
                    v.parse::<u64>()
                        .unwrap_or_else(|_| die(&format!("bad --deadline {v:?} (want seconds)"))),
                );
            }
            "--pcv" => {
                let kv = val("--pcv");
                let (name, v) = kv
                    .split_once('=')
                    .unwrap_or_else(|| die(&format!("bad --pcv {kv:?} (want name=value)")));
                let v = v
                    .parse::<u64>()
                    .unwrap_or_else(|_| die(&format!("bad PCV value in {kv:?}")));
                o.pcvs.push((name.to_string(), v));
            }
            other => die(&format!("unknown option {other:?}")),
        }
    }
    o
}

fn open_store(o: &Opts) -> ContractStore {
    let dir = o
        .store
        .clone()
        .or_else(|| {
            std::env::var("BOLT_STORE_DIR")
                .ok()
                .filter(|s| !s.is_empty())
        })
        .unwrap_or_else(|| ".bolt-store".to_string());
    ContractStore::open(&dir).unwrap_or_else(|e| die(&format!("cannot open store at {dir:?}: {e}")))
}

fn levels_of(o: &Opts) -> Vec<StackLevel> {
    match o.level.as_deref() {
        None | Some("full-stack") => vec![StackLevel::FullStack],
        Some("both") => vec![StackLevel::NfOnly, StackLevel::FullStack],
        Some(l) => vec![parse_level(l)],
    }
}

/// Get-or-explore one NF and persist both the exploration and contract
/// records; prints a one-line summary.
fn explore_one<N: NetworkFunction + Sync>(
    store: &ContractStore,
    name: &str,
    nf: N,
    level: StackLevel,
) {
    let key = store_key(&nf, level);
    let ex = store.get_or_explore(&nf, level);
    let n_paths = ex.result.paths.len();
    let source = if ex.cached { "warm" } else { "explored" };
    let contract = ex.contract();
    store
        .put_contract(key, name, level, &contract.inner)
        .unwrap_or_else(|e| die(&format!("cannot write contract record: {e}")));
    println!(
        "{name:>14} {:>10} {source:>8}  {n_paths:>3} paths  key {key}",
        level_name(level_tag(level)),
    );
}

fn cmd_explore(o: &Opts) {
    let store = open_store(o);
    let levels = levels_of(o);
    let names: Vec<&str> = if o.all {
        NF_NAMES.to_vec()
    } else {
        match o.nf.as_deref() {
            Some(n) => vec![n],
            None => die("explore needs --nf NAME or --all"),
        }
    };
    for name in names {
        for &level in &levels {
            with_nf!(name, nf => { explore_one(&store, name, nf, level); });
        }
    }
}

/// Builder for a serving endpoint named by `--remote`, honouring
/// `--timeout SECS` as the per-call reply deadline and `--depth N` as
/// the pipeline depth to negotiate.
fn remote_builder(o: &Opts, ep: &str) -> bolt::serve::ClientBuilder {
    let endpoint = Endpoint::parse(ep).unwrap_or_else(|e| die(&e.to_string()));
    let mut b = Client::builder(&endpoint);
    if let Some(secs) = o.timeout {
        b = b.deadline(std::time::Duration::from_secs(secs.max(1)));
    }
    if let Some(depth) = o.depth {
        b = b.pipeline_depth(depth.max(1));
    }
    b
}

/// Connect to a serving endpoint named by `--remote`.
fn remote_client(o: &Opts, ep: &str) -> Client {
    remote_builder(o, ep)
        .build()
        .unwrap_or_else(|e| die(&format!("cannot connect to {ep}: {e}")))
}

fn cmd_list(o: &Opts) {
    if let Some(ep) = &o.remote {
        match remote_client(o, ep).list() {
            Ok((_, text)) => print!("{text}"),
            Err(e) => die(&e.to_string()),
        }
        return;
    }
    let store = open_store(o);
    let entries = store
        .list()
        .unwrap_or_else(|e| die(&format!("cannot list store: {e}")));
    if entries.is_empty() {
        println!("store at {:?} is empty", store.dir());
        return;
    }
    println!(
        "{:>14} {:>10} {:>11} {:>6} {:>9}  key",
        "nf", "level", "kind", "paths", "bytes"
    );
    for e in entries {
        let kind = match e.kind {
            RecordKind::Exploration => "exploration",
            RecordKind::Contract => "contract",
            RecordKind::Composed => "composed",
            RecordKind::Plan => "plan",
        };
        println!(
            "{:>14} {:>10} {kind:>11} {:>6} {:>9}  {}",
            e.nf_name,
            level_name(e.level),
            e.n_paths,
            e.payload_len,
            e.fingerprint
        );
    }
}

fn query_one<N: NetworkFunction + Sync>(store: &ContractStore, nf: N, o: &Opts, level: StackLevel) {
    let metric = parse_metric(o.metric.as_deref().unwrap_or("instructions"));
    let ex = store.get_or_explore(&nf, level);
    let source = if ex.cached { "warm" } else { "explored" };
    let mut contract = ex.contract();
    let mut env = PcvAssignment::new();
    for (name, v) in &o.pcvs {
        match contract.reg.pcvs.lookup(name) {
            Some(id) => {
                env.set(id, *v);
            }
            None => {
                let known: Vec<&str> = contract.reg.pcvs.iter().map(|(_, n)| n).collect();
                die(&format!(
                    "unknown PCV {name:?}; this contract knows: {}",
                    known.join(", ")
                ));
            }
        }
    }
    let class = match &o.tag {
        Some(t) => InputClass::new(
            format!("tag:{t}"),
            ClassSpec::Tag(bolt::store::intern_tag(t)),
        ),
        None => InputClass::unconstrained(),
    };
    match contract.query(&class, metric, &env) {
        None => println!("no path of {} is compatible with {}", nf.name(), class.name),
        Some(q) => {
            let path = &contract.paths()[q.path_index];
            println!(
                "{} @ {} ({source}), class {}, metric {metric}:",
                nf.name(),
                level_name(level_tag(level)),
                class.name
            );
            println!("  worst path : #{} tags {:?}", q.path_index, path.tags);
            println!("  expression : {}", contract.display_expr(&q.expr));
            println!("  prediction : {} {metric}", q.value);
        }
    }
}

fn cmd_query(o: &Opts) {
    let name = o.nf.as_deref().unwrap_or_else(|| die("query needs --nf"));
    let level = levels_of(o)[0];
    if let Some(ep) = &o.remote {
        let metric = parse_metric(o.metric.as_deref().unwrap_or("instructions"));
        let req = QueryRequest {
            nf: name.to_string(),
            level: level_tag(level),
            metric: metric.index() as u8,
            tag: o.tag.clone(),
            pcvs: o.pcvs.clone(),
        };
        let repeat = o.repeat.unwrap_or(1).max(1);
        if repeat == 1 {
            match remote_client(o, ep).query(req) {
                Ok(reply) => print!("{}", reply.text),
                Err(e) => die(&e.to_string()),
            }
            return;
        }
        // A pipelined burst on one connection: submit everything up
        // front, then drain the replies in submission order.
        let mut session = remote_builder(o, ep)
            .session()
            .unwrap_or_else(|e| die(&format!("cannot connect to {ep}: {e}")));
        let wire = Request::Query(req);
        let mut tickets = Vec::with_capacity(repeat);
        for _ in 0..repeat {
            match session.submit(&wire) {
                Ok(t) => tickets.push(t),
                Err(e) => die(&e.to_string()),
            }
        }
        for t in tickets {
            match session.recv(t) {
                Ok(Response::Query(reply)) => print!("{}", reply.text),
                Ok(other) => die(&format!("unexpected reply {other:?}")),
                Err(e) => die(&e.to_string()),
            }
        }
        return;
    }
    let store = open_store(o);
    with_nf!(name, nf => { query_one(&store, nf, o, level); });
}

/// `NF[:LEVEL]` → (name, level).
fn parse_side(s: &str) -> (&str, StackLevel) {
    match s.split_once(':') {
        Some((n, l)) => (n, parse_level(l)),
        None => (s, StackLevel::FullStack),
    }
}

/// Stored contract for one diff side (get-or-derive-and-store).
fn side_contract(store: &ContractStore, side: &str) -> NfContract {
    let (name, level) = parse_side(side);
    with_nf!(name, nf => {
        let key = store_key(&nf, level);
        if let Some(c) = store.get_contract(key) {
            return c;
        }
        let contract = store.get_or_explore(&nf, level).contract().into_inner();
        store
            .put_contract(key, name, level, &contract)
            .unwrap_or_else(|e| die(&format!("cannot write contract record: {e}")));
        contract
    })
}

fn cmd_diff(o: &Opts) {
    let (sa, sb) = match (&o.a, &o.b) {
        (Some(a), Some(b)) => (a.as_str(), b.as_str()),
        _ => die("diff needs --a NF[:LEVEL] and --b NF[:LEVEL]"),
    };
    let metric = parse_metric(o.metric.as_deref().unwrap_or("instructions"));
    if let Some(ep) = &o.remote {
        let req = DiffRequest {
            a: sa.to_string(),
            b: sb.to_string(),
            metric: metric.index() as u8,
        };
        match remote_client(o, ep).diff(req) {
            Ok(text) => print!("{text}"),
            Err(e) => die(&e.to_string()),
        }
        return;
    }
    let store = open_store(o);
    let ca = side_contract(&store, sa);
    let cb = side_contract(&store, sb);
    let env = PcvAssignment::new();
    let worst = |c: &NfContract| {
        c.paths
            .iter()
            .map(|p| p.expr(metric).eval(&env))
            .max()
            .unwrap_or(0)
    };
    let tags = |c: &NfContract| -> BTreeSet<&'static str> {
        c.paths
            .iter()
            .flat_map(|p| p.tags.iter().copied())
            .collect()
    };
    let (wa, wb) = (worst(&ca), worst(&cb));
    println!("diff {sa} vs {sb} ({metric}, PCVs all 0):");
    println!("  paths      : {} vs {}", ca.paths.len(), cb.paths.len());
    println!(
        "  worst case : {wa} vs {wb} ({:+})",
        wb as i128 - wa as i128
    );
    let (ta, tb) = (tags(&ca), tags(&cb));
    let only_a: Vec<&str> = ta.difference(&tb).copied().collect();
    let only_b: Vec<&str> = tb.difference(&ta).copied().collect();
    if !only_a.is_empty() {
        println!("  tags only in {sa}: {only_a:?}");
    }
    if !only_b.is_empty() {
        println!("  tags only in {sb}: {only_b:?}");
    }
    if only_a.is_empty() && only_b.is_empty() {
        println!("  tag vocabularies agree");
    }
}

/// Compose a named chain through the store: every stage exploration and
/// every pairwise fold step is a content-addressed record, so repeating
/// the command is fully solver-free. Prints the composed contract's
/// provenance (the [`ChainReport`] rendering, or `--json`) and answers
/// one class query against it. `--parallelize` additionally plans the
/// chain — grouping provably-commuting stages — and `--plan` (implies
/// `--parallelize`) prints the per-pair commutativity witnesses.
fn cmd_chain(o: &Opts) {
    let store = open_store(o);
    let spec = o
        .nfs
        .as_deref()
        .unwrap_or_else(|| die("chain needs --nfs A,B[,C...]"));
    if !o.pcvs.is_empty() {
        // Composed contracts drop the per-stage registries, so PCV names
        // cannot be resolved here; failing beats silently ignoring them.
        die(
            "chain queries do not support --pcv (composed contracts have no PCV registry); \
             worst cases are reported at all-zero PCVs",
        );
    }
    let mut chain = Pipeline::new().with_store(&store);
    for name in spec.split(',') {
        with_nf!(name.trim(), nf => { chain = chain.push(nf); });
    }
    if let Some(t) = o.threads {
        chain = chain.threads(t);
    }
    let metric = parse_metric(o.metric.as_deref().unwrap_or("instructions"));
    for &level in &levels_of(o) {
        let rep = if o.parallelize || o.plan {
            chain.parallelize(level)
        } else {
            chain.report(level)
        }
        .unwrap_or_else(|| die("chain needs at least one NF"));
        if o.json {
            println!("{}", rep.to_json());
            continue;
        }
        println!("{rep}");
        if o.plan {
            if let Some(plan) = rep.plan.as_ref() {
                for w in &plan.witnesses {
                    println!("  witness    : {}", plan.describe_witness(w));
                }
            }
        }
        let class = match &o.tag {
            Some(t) => InputClass::new(
                format!("tag:{t}"),
                ClassSpec::Tag(bolt::store::intern_tag(t)),
            ),
            None => InputClass::unconstrained(),
        };
        let mut contract = rep.contract;
        let solver = bolt::solver::Solver::default();
        let env = PcvAssignment::new();
        match contract.query(&solver, &class, metric, &env) {
            None => println!("  no composed path is compatible with {}", class.name),
            Some(q) => {
                let path = &contract.paths[q.path_index];
                println!(
                    "  class {} / {metric}: worst path #{} tags {:?} -> {} {metric}",
                    class.name, q.path_index, path.tags, q.value
                );
            }
        }
    }
}

fn cmd_evict(o: &Opts) {
    let store = open_store(o);
    if let Some(budget) = o.budget {
        if o.nf.is_some() || o.level.is_some() {
            // The sweep is store-wide LRU; silently ignoring --nf or
            // --level would delete records the user meant to keep.
            die("evict --budget sweeps the whole store; it cannot be combined with --nf/--level");
        }
        // LRU sweep: keep the most recently used records that fit in
        // the byte budget, evict the rest.
        let r = store
            .sweep(budget)
            .unwrap_or_else(|e| die(&format!("sweep failed: {e}")));
        println!(
            "sweep to {budget} bytes: kept {} record(s) ({} bytes), \
             evicted {} ({} bytes reclaimed)",
            r.kept, r.kept_bytes, r.evicted, r.evicted_bytes
        );
        return;
    }
    let name =
        o.nf.as_deref()
            .unwrap_or_else(|| die("evict needs --nf or --budget"));
    for &level in &levels_of(o) {
        with_nf!(name, nf => {
            let key = store_key(&nf, level);
            let mut removed = false;
            for kind in [RecordKind::Exploration, RecordKind::Contract] {
                removed |= store
                    .evict(key, kind)
                    .unwrap_or_else(|e| die(&format!("evict failed: {e}")));
            }
            println!(
                "{name} @ {}: {}",
                level_name(level_tag(level)),
                if removed { "evicted" } else { "no record" }
            );
        });
    }
}

/// Run the long-lived contract server until a client asks it to shut
/// down. Defaults to a Unix socket named `bolt.sock` inside the store
/// directory when no endpoint is given.
fn cmd_serve(o: &Opts) {
    let store = open_store(o);
    let core = match o.cache_budget {
        Some(budget) => ServeCore::with_config(
            store,
            CacheConfig {
                budget,
                ..CacheConfig::default()
            },
        ),
        None => ServeCore::new(store),
    };
    let default_sock = core.store().dir().join("bolt.sock");
    let store_dir = core.store().dir().to_path_buf();
    let unix = match (&o.socket, &o.tcp) {
        (Some(p), _) => Some(std::path::PathBuf::from(p)),
        (None, None) => Some(default_sock),
        (None, Some(_)) => None,
    };
    let mut builder = Server::builder().max_connections(o.max_conns.unwrap_or(0));
    if let Some(p) = unix {
        builder = builder.unix(p);
    }
    if let Some(t) = &o.tcp {
        builder = builder.tcp(t.clone());
    }
    if let Some(secs) = o.idle_timeout {
        builder = builder.idle_timeout(std::time::Duration::from_secs(secs));
    }
    if let Some(secs) = o.deadline {
        builder = builder.request_deadline(std::time::Duration::from_secs(secs));
    }
    if let Some(depth) = o.depth {
        builder = builder.max_pipeline_depth(depth.max(1));
    }
    if let Some(path) = &o.metrics_text {
        builder = builder.metrics_text(path);
    }
    let server = builder
        .start(core)
        .unwrap_or_else(|e| die(&format!("cannot start server: {e}")));
    println!("serving store at {store_dir:?}");
    if let Some(p) = server.unix_path() {
        println!("  unix socket : {}", p.display());
    }
    if let Some(a) = server.tcp_addr() {
        println!("  tcp         : tcp:{a}");
    }
    // The Prometheus textfile exporter now lives in the server itself
    // (`ServerBuilder::metrics_text`): once a second while serving,
    // once more after the drain.
    if let Some(path) = &o.metrics_text {
        println!("  metrics     : {path} (Prometheus text)");
    }
    println!("stop with: bolt_cli shutdown --remote <endpoint>");
    let core = server.join();
    let stats = core.stats_reply();
    let read = |n: &str| stats.get(n).unwrap_or(0);
    println!(
        "server stopped: {} request(s), {} memo hit(s), {} exploration(s), {} eviction(s)",
        read("requests"),
        read("memo_hits"),
        read("explorations"),
        read("evictions"),
    );
}

fn cmd_provenance(o: &Opts) {
    let name =
        o.nf.as_deref()
            .unwrap_or_else(|| die("provenance needs --nf"));
    let level = level_tag(levels_of(o)[0]);
    if let Some(ep) = &o.remote {
        match remote_client(o, ep).provenance(name, level) {
            Ok(text) => print!("{text}"),
            Err(e) => die(&e.to_string()),
        }
        return;
    }
    let core = ServeCore::new(open_store(o));
    match core.provenance(name, level) {
        Ok(text) => print!("{text}"),
        Err(e) => die(&e),
    }
}

/// Liveness probe for health checks and CI readiness loops: exit 0 when
/// the server answers a ping within the deadline (5 s unless `--timeout`
/// says otherwise), exit 1 on *any* failure — never 2, so scripts can
/// tell "server down" from "you typed the command wrong".
fn cmd_ping(o: &Opts) {
    let ep = o
        .remote
        .as_deref()
        .unwrap_or_else(|| die("ping needs --remote ENDPOINT"));
    let endpoint = match Endpoint::parse(ep) {
        Ok(ep) => ep,
        Err(e) => die(&e.to_string()), // malformed spec IS a usage error
    };
    let wait = std::time::Duration::from_secs(o.timeout.unwrap_or(5).max(1));
    let probe = Client::builder(&endpoint)
        .deadline(wait)
        .connect_timeout(wait)
        .retries(0) // a probe reports the truth right now; no masking
        .pipeline_depth(1) // and no negotiation round trip either
        .build();
    match probe.and_then(|mut c| c.ping()) {
        Ok(version) => {
            println!("{ep}: alive (server v{version})");
        }
        Err(e) => {
            eprintln!("bolt: {ep}: {e}");
            exit(1);
        }
    }
}

/// Render nanoseconds for humans: `640ns`, `21.5µs`, `3.2ms`, `1.08s`.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// `hits / (hits + misses)` as a percentage, when anything was counted.
fn hit_rate(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    (total > 0).then(|| 100.0 * hits as f64 / total as f64)
}

/// The one-snapshot observability view: counters and gauges, derived
/// hit rates, and a percentile table over every latency histogram.
fn print_metrics_table(m: &MetricsReply) {
    println!("counters:");
    for (name, value) in &m.counters {
        println!("  {name:<28} {value}");
    }
    for (name, value) in &m.gauges {
        println!("  {name:<28} {value}  (gauge)");
    }
    let rate_rows = [
        ("contract cache", "serve.cache_hits", "serve.cache_misses"),
        ("query memo", "serve.memo_hits", "serve.memo_misses"),
        ("store records", "store.hits", "store.misses"),
    ];
    println!("hit rates:");
    for (label, h, miss) in rate_rows {
        match hit_rate(m.counter(h).unwrap_or(0), m.counter(miss).unwrap_or(0)) {
            Some(pct) => println!("  {label:<28} {pct:.1}%"),
            None => println!("  {label:<28} -"),
        }
    }
    println!(
        "latency:\n  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "histogram", "count", "p50", "p90", "p99", "max", "mean"
    );
    for (name, h) in &m.histograms {
        println!(
            "  {name:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            h.count,
            fmt_ns(h.p50()),
            fmt_ns(h.p90()),
            fmt_ns(h.p99()),
            fmt_ns(h.max),
            fmt_ns(h.mean() as u64),
        );
    }
}

/// The same snapshot as a JSON object (stable key order: the reply's).
fn metrics_json(m: &MetricsReply) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, v)) in m.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        out += &format!("{sep}\n    \"{}\": {v}", esc(name));
    }
    out += "\n  },\n  \"gauges\": {";
    for (i, (name, v)) in m.gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        out += &format!("{sep}\n    \"{}\": {v}", esc(name));
    }
    out += "\n  },\n  \"histograms\": {";
    for (i, (name, h)) in m.histograms.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        out += &format!(
            "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}, \"mean\": {:.1}}}",
            esc(name),
            h.count,
            h.sum,
            h.max,
            h.p50(),
            h.p90(),
            h.p99(),
            h.mean(),
        );
    }
    out += "\n  }\n}\n";
    out
}

fn cmd_stats(o: &Opts) {
    let ep = o
        .remote
        .as_deref()
        .unwrap_or_else(|| die("stats needs --remote ENDPOINT (counters live in the server)"));
    let mut client = remote_client(o, ep);
    if o.histograms || o.json {
        // The full observability snapshot (metrics opcode): counters,
        // gauges, and latency histograms in one consistent reply.
        let m = client.metrics().unwrap_or_else(|e| die(&e.to_string()));
        if o.json {
            print!("{}", metrics_json(&m));
        } else {
            print_metrics_table(&m);
        }
        return;
    }
    match client.stats() {
        Ok(stats) => {
            for (name, value) in &stats.counters {
                println!("{name:>16} : {value}");
            }
        }
        Err(e) => die(&e.to_string()),
    }
}

fn cmd_shutdown(o: &Opts) {
    let ep = o
        .remote
        .as_deref()
        .unwrap_or_else(|| die("shutdown needs --remote ENDPOINT"));
    match remote_client(o, ep).shutdown() {
        Ok(()) => println!("server at {ep} is shutting down"),
        Err(e) => die(&e.to_string()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let o = parse_opts(rest);
    match cmd.as_str() {
        "explore" => cmd_explore(&o),
        "list" => cmd_list(&o),
        "query" => cmd_query(&o),
        "chain" => cmd_chain(&o),
        "diff" => cmd_diff(&o),
        "evict" => cmd_evict(&o),
        "serve" => cmd_serve(&o),
        "provenance" => cmd_provenance(&o),
        "ping" => cmd_ping(&o),
        "stats" => cmd_stats(&o),
        "shutdown" => cmd_shutdown(&o),
        _ => usage(),
    }
}
