//! Quickstart: generate and query a performance contract.
//!
//! This walks the §2 running example end to end through the fluent
//! pipeline: symbolically execute the trie-based LPM router's analysis
//! build, generate its contract, print the Table-1-style rows, bind the
//! PCV, and check the prediction against a real (concrete, instrumented)
//! execution.
//!
//! Run with: `cargo run --example quickstart`

use bolt::core::{ClassSpec, InputClass};
use bolt::distiller::NfRunner;
use bolt::dpdk::headers as h;
use bolt::expr::PcvAssignment;
use bolt::lib::clock::Granularity;
use bolt::nfs::ExampleRouter;
use bolt::see::StackLevel;
use bolt::trace::{AddressSpace, Metric};
use bolt::workloads::TimedPacket;
use bolt::{Bolt, NetworkFunction};

fn main() {
    // 1+2. Analysis build and contract generation in one fluent chain:
    //      explore every path of the NF linked against the data-structure
    //      models, then run Algorithm 2 over the result.
    let nf = ExampleRouter::default();
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    println!("explored {} feasible paths", contract.paths().len());

    // 3. Query it per input class. The PCV `l` (matched prefix length)
    //    parameterises the valid-packet classes.
    let classes = [
        InputClass::new(
            "invalid packets",
            ClassSpec::field_ne(h::ETHER_TYPE, 2, h::ETHERTYPE_IPV4 as u64),
        ),
        InputClass::new(
            "valid packets",
            ClassSpec::field_eq(h::ETHER_TYPE, 2, h::ETHERTYPE_IPV4 as u64),
        ),
    ];
    println!("\nperformance contract (instructions):");
    for class in &classes {
        let q = contract
            .query(class, Metric::Instructions, &PcvAssignment::new())
            .unwrap();
        let rendered = contract.display_expr(&q.expr);
        println!("  {:<18} {rendered}", class.name);
    }

    // 4. Bind the PCV: what does a 24-bit match cost?
    let mut env = PcvAssignment::new();
    env.set(contract.ids.trie.l, 24);
    let q = contract
        .query(&classes[1], Metric::Instructions, &env)
        .unwrap();
    println!("\npredicted instructions for a 24-bit match: {}", q.value);

    // 5. Validate against the production build: run a real packet through
    //    the concrete, instrumented router — built from the same
    //    descriptor and registered ids.
    let mut aspace = AddressSpace::new();
    let mut state = nf.state(contract.ids, &mut aspace);
    state.trie.insert(0x0A0B0C00, 24, 7);
    let frame = h::PacketBuilder::new()
        .eth(2, 1, h::ETHERTYPE_IPV4)
        .ipv4(1, 0x0A0B0C05, h::IPPROTO_UDP, 64)
        .udp(1, 2)
        .build();
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Nanoseconds);
    runner.play_nf(
        &nf,
        &mut state,
        &[TimedPacket {
            t_ns: 0,
            frame,
            port: 0,
        }],
    );
    let measured = runner.samples[0].ic;
    println!("measured instructions:                     {measured}");
    assert!(q.value >= measured, "the contract is an upper bound");
    println!(
        "\nthe contract over-estimates by {:.1}% (path coalescing; §3.2)",
        (q.value as f64 / measured as f64 - 1.0) * 100.0
    );
}
