//! Quickstart: generate and query a performance contract.
//!
//! This walks the §2 running example end to end: symbolically execute the
//! trie-based LPM router's analysis build, generate its contract, print
//! the Table-1-style rows, bind the PCV, and check the prediction against
//! a real (concrete, instrumented) execution.
//!
//! Run with: `cargo run --example quickstart`

use bolt::core::{generate, ClassSpec, InputClass};
use bolt::distiller::NfRunner;
use bolt::dpdk::headers as h;
use bolt::expr::PcvAssignment;
use bolt::lib::clock::Granularity;
use bolt::nfs::example_router;
use bolt::see::StackLevel;
use bolt::solver::Solver;
use bolt::trace::{AddressSpace, Metric};
use bolt::workloads::TimedPacket;

fn main() {
    // 1. Analysis build: explore every path of the NF linked against the
    //    data-structure models (Algorithm 2, lines 2-3).
    let (reg, ids, exploration) = example_router::explore(StackLevel::FullStack);
    println!("explored {} feasible paths", exploration.paths.len());

    // 2. Generate the contract: stateless instruction costs + the trie's
    //    pre-analysed method contract per path.
    let mut contract = generate(&reg, exploration);

    // 3. Query it per input class. The PCV `l` (matched prefix length)
    //    parameterises the valid-packet classes.
    let solver = Solver::default();
    let classes = [
        InputClass::new(
            "invalid packets",
            ClassSpec::field_ne(h::ETHER_TYPE, 2, h::ETHERTYPE_IPV4 as u64),
        ),
        InputClass::new(
            "valid packets",
            ClassSpec::field_eq(h::ETHER_TYPE, 2, h::ETHERTYPE_IPV4 as u64),
        ),
    ];
    println!("\nperformance contract (instructions):");
    for class in &classes {
        let q = contract
            .query(&solver, class, Metric::Instructions, &PcvAssignment::new())
            .unwrap();
        println!("  {:<18} {}", class.name, q.expr.display(&reg.pcvs));
    }

    // 4. Bind the PCV: what does a 24-bit match cost?
    let mut env = PcvAssignment::new();
    env.set(ids.trie.l, 24);
    let q = contract
        .query(&solver, &classes[1], Metric::Instructions, &env)
        .unwrap();
    println!("\npredicted instructions for a 24-bit match: {}", q.value);

    // 5. Validate against the production build: run a real packet through
    //    the concrete, instrumented router.
    let mut aspace = AddressSpace::new();
    let mut router = example_router::ExampleRouter::new(ids, 4096, &mut aspace);
    router.trie.insert(0x0A0B0C00, 24, 7);
    let frame = h::PacketBuilder::new()
        .eth(2, 1, h::ETHERTYPE_IPV4)
        .ipv4(1, 0x0A0B0C05, h::IPPROTO_UDP, 64)
        .udp(1, 2)
        .build();
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Nanoseconds);
    runner.play(
        &[TimedPacket { t_ns: 0, frame, port: 0 }],
        |ctx, mbuf, _clock| example_router::process(ctx, &mut router.trie, mbuf),
    );
    let measured = runner.samples[0].ic;
    println!("measured instructions:                     {measured}");
    assert!(q.value >= measured, "the contract is an upper bound");
    println!(
        "\nthe contract over-estimates by {:.1}% (path coalescing; §3.2)",
        (q.value as f64 / measured as f64 - 1.0) * 100.0
    );
}
