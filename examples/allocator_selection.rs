//! Developer use case (§5.3): choosing between two data-structure
//! implementations with contracts instead of A/B testing.
//!
//! Two port allocators, both O(1): A (randomized FIFO free list) has
//! occupancy-independent constants; B (first-fit array scan) is cheap at
//! low occupancy and pays an occupancy-dependent probe count at high
//! occupancy. The contracts expose the trade-off as expressions the
//! developer can evaluate against expected traffic.
//!
//! Run with: `cargo run --example allocator_selection`

use bolt::expr::PcvAssignment;
use bolt::lib::port_alloc::{self, C_OK, M_ALLOC};
use bolt::lib::registry::DsRegistry;
use bolt::trace::{Metric, StatefulCall};

fn main() {
    let mut reg = DsRegistry::new();
    let a = port_alloc::register_a(&mut reg, "alloc_a", 4096, 1024);
    let b = port_alloc::register_b(&mut reg, "alloc_b", 4096, 1024);

    let a_case = reg.resolve(StatefulCall {
        ds: a.ds,
        method: M_ALLOC,
        case: C_OK,
    });
    let b_case = reg.resolve(StatefulCall {
        ds: b.ds,
        method: M_ALLOC,
        case: C_OK,
    });
    println!("allocation contracts (cycles, conservative):");
    println!("  A: {}", a_case.expr(Metric::Cycles).display(&reg.pcvs));
    println!("  B: {}", b_case.expr(Metric::Cycles).display(&reg.pcvs));
    println!("\nB's cost depends on its probe count PCV `alloc_b.p`; A's does not.\n");

    // Evaluate the trade-off at the occupancy regimes the developer
    // expects (probes ≈ first free slot position).
    let a_cost = a_case.expr(Metric::Cycles).as_const().unwrap();
    println!("expected traffic regimes:");
    for (regime, probes) in [
        ("low occupancy (high churn)", 1u64),
        ("high occupancy (low churn)", 40),
    ] {
        let mut env = PcvAssignment::new();
        env.set(b.p, probes);
        let b_cost = b_case.expr(Metric::Cycles).eval(&env);
        let winner = if b_cost < a_cost { "B" } else { "A" };
        println!("  {regime:<28} A: {a_cost:>5} cycles  B: {b_cost:>5} cycles  → pick {winner}");
    }
    println!(
        "\nThe decision falls out of the contracts — no A/B testing rig required (§5.3). \
         Run the fig5_6_7_allocators bench for the full NF-level comparison."
    );
}
