//! Operator use case (§5.2, §3.4): reasoning about a chain of NFs.
//!
//! A firewall that drops IP-options packets sits in front of a router
//! whose options path is expensive. Adding the two worst cases
//! over-provisions; BOLT's chain composition proves the expensive
//! combination infeasible and produces a tighter bound. The chain is just
//! a [`Pipeline`] of NF descriptors.
//!
//! Run with: `cargo run --example chain_provisioning`

use bolt::core::{ClassSpec, InputClass};
use bolt::expr::PcvAssignment;
use bolt::nfs::{Firewall, StaticRouter};
use bolt::see::StackLevel;
use bolt::solver::Solver;
use bolt::trace::Metric;
use bolt::{Composer, NetworkFunction, Pipeline};

fn main() {
    let solver = Solver::default();
    let env = PcvAssignment::new();

    let classes = [
        InputClass::new("no IP options", ClassSpec::Tag("no-options")),
        InputClass::new("IP options", ClassSpec::Tag("ip-options")),
    ];
    println!("individual contracts (instructions):");
    let mut fw = Firewall::default().contract(StackLevel::FullStack);
    let mut rt = StaticRouter::default().contract(StackLevel::FullStack);
    for class in &classes {
        if let Some(q) = fw.query(class, Metric::Instructions, &env) {
            println!("  {:<9} {:<14} {}", "firewall", class.name, q.value);
        }
    }
    for class in &classes {
        if let Some(q) = rt.query(class, Metric::Instructions, &env) {
            println!("  {:<9} {:<14} {}", "router", class.name, q.value);
        }
    }

    // Compose: pair paths, link the packet expressions, drop infeasible
    // combinations (the firewall's forwarded packets can never reach the
    // router's option loop). A chain is just a Pipeline of descriptors;
    // exploring the stages once serves both the composed contract and
    // the naive baseline.
    let pipeline = Pipeline::new()
        .push(Firewall::default())
        .push(StaticRouter::default());
    let stage_contracts = pipeline.contracts(StackLevel::FullStack);
    let naive = Pipeline::naive_add_of(&stage_contracts, Metric::Instructions, &env);
    let mut chain = Composer::new(&solver).compose_all(stage_contracts).unwrap();
    println!("\ncomposed {:?} contract:", pipeline.names());
    for class in &classes {
        if let Some(q) = chain.query(&solver, class, Metric::Instructions, &env) {
            println!("  chain     {:<14} {}", class.name, q.value);
        }
    }

    let composed = chain
        .query(
            &solver,
            &InputClass::unconstrained(),
            Metric::Instructions,
            &env,
        )
        .unwrap()
        .value;
    println!("\nworst case for provisioning:");
    println!("  naive addition:     {naive} instructions");
    println!("  BOLT composition:   {composed} instructions");
    println!(
        "  over-provisioning avoided: {:.0}%",
        (naive as f64 / composed as f64 - 1.0) * 100.0
    );
    assert!(composed < naive);
}
