//! Operator use case (§5.2, §3.4): reasoning about a chain of NFs.
//!
//! A firewall that drops IP-options packets sits in front of a router
//! whose options path is expensive. Adding the two worst cases
//! over-provisions; BOLT's chain composition proves the expensive
//! combination infeasible and produces a tighter bound.
//!
//! Run with: `cargo run --example chain_provisioning`

use bolt::core::{compose, generate, naive_add, ClassSpec, InputClass};
use bolt::expr::PcvAssignment;
use bolt::lib::registry::DsRegistry;
use bolt::nfs::{firewall, static_router};
use bolt::see::StackLevel;
use bolt::solver::Solver;
use bolt::trace::Metric;

fn main() {
    let reg = DsRegistry::new();
    let (_, fw_exp) = firewall::explore(&firewall::FirewallConfig::default(), StackLevel::FullStack);
    let (_, rt_exp) = static_router::explore(StackLevel::FullStack);
    let mut fw = generate(&reg, fw_exp);
    let mut rt = generate(&reg, rt_exp);
    let solver = Solver::default();
    let env = PcvAssignment::new();

    let classes = [
        InputClass::new("no IP options", ClassSpec::Tag("no-options")),
        InputClass::new("IP options", ClassSpec::Tag("ip-options")),
    ];
    println!("individual contracts (instructions):");
    for (name, c) in [("firewall", &mut fw), ("router", &mut rt)] {
        for class in &classes {
            if let Some(q) = c.query(&solver, class, Metric::Instructions, &env) {
                println!("  {name:<9} {:<14} {}", class.name, q.value);
            }
        }
    }

    // Compose: pair paths, link the packet expressions, drop infeasible
    // combinations (the firewall's forwarded packets can never reach the
    // router's option loop).
    let mut chain = compose(&fw, &rt, &solver);
    println!("\ncomposed firewall→router contract:");
    for class in &classes {
        if let Some(q) = chain.query(&solver, class, Metric::Instructions, &env) {
            println!("  chain     {:<14} {}", class.name, q.value);
        }
    }

    let naive = naive_add(&fw, &rt, Metric::Instructions, &env);
    let composed = chain
        .query(&solver, &InputClass::unconstrained(), Metric::Instructions, &env)
        .unwrap()
        .value;
    println!("\nworst case for provisioning:");
    println!("  naive addition:     {naive} instructions");
    println!("  BOLT composition:   {composed} instructions");
    println!(
        "  over-provisioning avoided: {:.0}%",
        (naive as f64 / composed as f64 - 1.0) * 100.0
    );
    assert!(composed < naive);
}
