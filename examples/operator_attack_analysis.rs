//! Operator use case (§5.2): understanding an NF under attack and
//! choosing the rehash-defence threshold.
//!
//! The bridge's MAC table defends against hash-collision attacks by
//! re-seeding and rebuilding when a probe exceeds a threshold. The
//! contract prices both sides of the trade-off — the attack's cost growth
//! and the defence's cliff — and the Distiller shows where legitimate
//! traffic actually lives, so the operator can position the threshold.
//!
//! Run with: `cargo run --example operator_attack_analysis`

use bolt::core::{ClassSpec, InputClass};
use bolt::distiller::NfRunner;
use bolt::expr::PcvAssignment;
use bolt::lib::clock::Granularity;
use bolt::nfs::bridge::{Bridge, BridgeConfig};
use bolt::see::StackLevel;
use bolt::trace::{AddressSpace, Metric};
use bolt::workloads::generators::{bridge_collision_attack, bridge_traffic};
use bolt::{Bolt, NetworkFunction};

fn main() {
    let nf = Bridge::with(BridgeConfig {
        capacity: 1024,
        ttl_ns: u64::MAX / 2,
        rehash_threshold: 6,
    });
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    let ids = contract.ids;

    // The contract prices the attack: cost per probe length.
    println!("contract: learn cost as the attacker lengthens the probe run");
    let unknown = InputClass::new(
        "unknown source, no rehash",
        ClassSpec::all([
            ClassSpec::Tag("src:unknown"),
            ClassSpec::NotTag("src:rehash"),
        ]),
    );
    for t in [0u64, 2, 4, 6, 8] {
        let mut env = PcvAssignment::new();
        env.set(ids.table.store.t, t).set(ids.table.store.c, t);
        let q = contract
            .query(&unknown, Metric::Instructions, &env)
            .unwrap();
        println!("  probe length {t}: {} instructions", q.value);
    }
    let rehash = contract
        .query(
            &InputClass::new("rehash", ClassSpec::Tag("src:rehash")),
            Metric::Instructions,
            &PcvAssignment::new(),
        )
        .unwrap();
    println!(
        "  defence trigger (rehash): {} instructions — the cliff\n",
        rehash.value
    );

    // The Distiller: where does legitimate traffic live?
    let mut aspace = AddressSpace::new();
    let mut b = nf.state(ids, &mut aspace);
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
    runner.play_nf(&nf, &mut b, &bridge_traffic(3, 10_000, 360, false, 1_000));
    println!("distiller: probe-length CCDF under legitimate uniform traffic");
    for (t, frac) in runner.distiller.ccdf(ids.table.store.t) {
        println!("  P[probes > {t}] = {frac:.4}");
    }
    let over_threshold: f64 = runner
        .distiller
        .ccdf(ids.table.store.t)
        .iter()
        .filter(|&&(v, _)| v == 5)
        .map(|&(_, f)| f)
        .sum();
    println!(
        "\nlegitimate traffic beyond 6 probes: {:.3}% — safe to arm the defence at 6\n",
        over_threshold * 100.0
    );

    // Now the attack: adversarial MACs that collide in one slot.
    let attack = bridge_collision_attack(|m| b.table.bucket_of(m), 7, 64, 1_000);
    let before = runner.samples.len();
    let seed_before = b.table.seed();
    runner.play_nf(&nf, &mut b, &attack);
    let worst = runner.samples[before..].iter().map(|s| s.ic).max().unwrap();
    println!(
        "collision attack replayed: worst packet {} instructions",
        worst
    );
    assert_ne!(
        seed_before,
        b.table.seed(),
        "the defence re-seeded the table"
    );
    println!("defence triggered: hash seed renewed, attacker's precomputed collisions are dead.");
}
