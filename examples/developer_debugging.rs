//! Developer use case (§5.3): finding VigNAT's expiry-batching bug with
//! the contract and the Distiller — then verifying the fix.
//!
//! With second-granularity flow timestamps, every flow stamped within the
//! same second expires in one batch; the contract's dominant `e` term
//! says expiry is where the time goes, and the Distiller's expired-flows
//! report shows the batching directly. Millisecond granularity fixes it.
//!
//! Run with: `cargo run --example developer_debugging`

use bolt::core::{ClassSpec, InputClass};
use bolt::distiller::{percentile, NfRunner};
use bolt::expr::{Monomial, PcvAssignment};
use bolt::lib::clock::Granularity;
use bolt::nfs::nat::{AllocKind, Nat, NatConfig};
use bolt::see::StackLevel;
use bolt::trace::{AddressSpace, Metric};
use bolt::workloads::generators::uniform_udp_flows;
use bolt::{Bolt, NetworkFunction};

const SECOND: u64 = 1 << 30;

fn run(granularity: Granularity) -> NfRunner {
    let nf = Nat::with(
        NatConfig {
            capacity: 4096,
            ttl_ns: 2 * SECOND,
            n_ports: 4096,
            ..Default::default()
        },
        AllocKind::A,
    );
    let mut reg = bolt::lib::registry::DsRegistry::new();
    let ids = nf.register(&mut reg);
    let mut aspace = AddressSpace::new();
    let mut state = nf.state(ids, &mut aspace);
    let mut runner = NfRunner::new(StackLevel::FullStack, granularity);
    runner.play_nf(
        &nf,
        &mut state,
        &uniform_udp_flows(9, 15_000, 256, SECOND / 64, 0),
    );
    runner
}

fn main() {
    // Step 1: the contract names the suspect. The `e` coefficient
    // dominates every other PCV by an order of magnitude.
    let mut contract = Bolt::nf(Nat::default())
        .explore(StackLevel::FullStack)
        .contract();
    let ids = contract.ids;
    let known = contract
        .query(
            &InputClass::new("known flows", ClassSpec::Tag("int:known")),
            Metric::Instructions,
            &PcvAssignment::new(),
        )
        .unwrap();
    println!(
        "known-flow contract: {}",
        contract.display_expr(&known.expr)
    );
    let e_coeff = known.expr.coeff(&Monomial::var(ids.ft.e));
    println!(
        "the 'e' (expired flows) coefficient is {e_coeff} — dominant. Expiry is the suspect.\n"
    );

    // Step 2: the Distiller confirms batching under the original
    // second-granularity timestamps.
    let original = run(Granularity::Seconds);
    println!("expired flows per packet, SECOND granularity (original):");
    print!(
        "{}",
        original.distiller.report(&contract.reg.pcvs, ids.ft.e, 16)
    );
    let p999 = percentile(&original.cycle_samples(), 0.999);
    let p50 = percentile(&original.cycle_samples(), 0.5);
    println!("latency: median {p50:.0} cycles, p99.9 {p999:.0} cycles — a long tail\n");

    // Step 3: the fix. Millisecond granularity spreads expiry out.
    let fixed = run(Granularity::Milliseconds);
    println!("expired flows per packet, MILLISECOND granularity (fixed):");
    print!(
        "{}",
        fixed.distiller.report(&contract.reg.pcvs, ids.ft.e, 16)
    );
    let f999 = percentile(&fixed.cycle_samples(), 0.999);
    let f50 = percentile(&fixed.cycle_samples(), 0.5);
    println!("latency: median {f50:.0} cycles, p99.9 {f999:.0} cycles");
    println!(
        "\nthe tail shrank {:.1}x; the median rose {:.0}% (more packets expire a flow or two) — \
         exactly the paper's Figure 4.",
        p999 / f999,
        (f50 / p50 - 1.0) * 100.0
    );
    assert!(p999 > 2.0 * f999);
}
